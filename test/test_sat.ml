(* lib/sat: the CDCL core's budget/fault contract, agreement of the CNF
   encoding with the CSP engine (and its pre-columnar Reference oracle)
   on random hom instances, soundness of the symmetry-breaking clauses,
   the planner's SAT route, and the resilient ladder's backend
   crossing. *)

open Certdb_values
module Obs = Certdb_obs.Obs
module Fault = Certdb_obs.Fault
module Engine = Certdb_csp.Engine
module Structure = Certdb_csp.Structure
module Cdcl = Certdb_sat.Solver.Cdcl
module Dimacs = Certdb_sat.Dimacs
module Encode = Certdb_sat.Encode
module Backend = Certdb_sat.Backend
module Instance = Certdb_relational.Instance
module Cq = Certdb_query.Cq
module Certain = Certdb_query.Certain
module Plan = Certdb_analysis.Plan

let check = Alcotest.(check bool)
let counter_value name = Obs.counter_value (Obs.counter name)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0
let c i = Value.int i
let v x = Certdb_query.Fo.Var x

(* --- the CDCL core --- *)

(* NB: always bind the solve result before reading model values —
   Printf evaluates arguments right to left, so inlining both calls in
   one format application reads the model before it exists. *)

let test_cdcl_sat_model () =
  let s = Cdcl.create () in
  let a = Cdcl.new_var s in
  let b = Cdcl.new_var s in
  Cdcl.add_clause s [ a; b ];
  Cdcl.add_clause s [ -a; b ];
  let r = Cdcl.solve s in
  check "sat" true (r = Engine.Sat ());
  (* b is forced: a model with b=false would violate one of the two *)
  check "b true" true (Cdcl.model_value s b);
  (* incremental: the clause set is permanent, adding ¬b flips it *)
  Cdcl.add_clause s [ -b ];
  check "unsat after -b" true (Cdcl.solve s = Engine.Unsat)

let test_cdcl_assumptions () =
  let s = Cdcl.create () in
  let a = Cdcl.new_var s in
  let b = Cdcl.new_var s in
  Cdcl.add_clause s [ a; b ];
  check "unsat under assumptions" true
    (Cdcl.solve ~assumptions:[ -a; -b ] s = Engine.Unsat);
  check "sat without them" true (Cdcl.solve s = Engine.Sat ())

let test_cdcl_empty_clause () =
  let s = Cdcl.create () in
  let _ = Cdcl.new_var s in
  Cdcl.add_clause s [];
  check "empty clause" true (Cdcl.solve s = Engine.Unsat)

(* pigeonhole: n+1 pigeons into n holes — unsat, and small enough to
   refute quickly, but only through genuine conflicts *)
let pigeonhole s n =
  let var = Array.init (n + 1) (fun _ -> Array.init n (fun _ -> Cdcl.new_var s)) in
  for p = 0 to n do
    Cdcl.add_clause s (Array.to_list var.(p))
  done;
  for h = 0 to n - 1 do
    for p = 0 to n do
      for q = p + 1 to n do
        Cdcl.add_clause s [ -var.(p).(h); -var.(q).(h) ]
      done
    done
  done

let test_cdcl_pigeonhole () =
  let s = Cdcl.create () in
  pigeonhole s 3;
  check "php(4,3) unsat" true (Cdcl.solve s = Engine.Unsat);
  check "needed conflicts" true (Cdcl.conflicts s > 0)

let test_cdcl_budgets () =
  let s = Cdcl.create () in
  pigeonhole s 4;
  let r = Cdcl.solve ~limits:(Engine.Limits.make ~backtracks:0 ()) s in
  check "conflict budget" true (r = Engine.Unknown Engine.Backtrack_budget);
  let r = Cdcl.solve ~limits:(Engine.Limits.make ~nodes:0 ()) s in
  check "decision budget" true (r = Engine.Unknown Engine.Node_budget);
  let cancel = Engine.Cancel.create () in
  Engine.Cancel.cancel cancel;
  let r = Cdcl.solve ~limits:(Engine.Limits.make ~cancel ()) s in
  check "cancelled" true (r = Engine.Unknown Engine.Cancelled);
  (* the budgets left no mark: the full solve is still definitive *)
  check "still unsat" true (Cdcl.solve s = Engine.Unsat)

let test_cdcl_fault_point () =
  let s = Cdcl.create () in
  pigeonhole s 3;
  Fault.with_armed [ (Certdb_sat.Solver.conflict_fault_point, Fault.Every 1) ]
  @@ fun () ->
  match Cdcl.solve s with
  | Engine.Unknown (Engine.Crashed p) ->
    check "fault point name" true (p = "csp.sat.conflict")
  | _ -> Alcotest.fail "expected Unknown (Crashed csp.sat.conflict)"

let test_recorder () =
  let r = Dimacs.Recorder.create () in
  let a = Dimacs.Recorder.new_var r in
  let b = Dimacs.Recorder.new_var r in
  Dimacs.Recorder.add_clause r [ a; -b ];
  Dimacs.Recorder.add_clause r [ b ];
  let s = Dimacs.to_string ~comments:[ "hello" ] r in
  check "header" true
    (contains ~sub:"p cnf 2 2" s && contains ~sub:"c hello" s);
  check "recorder never solves" true
    (match Dimacs.Recorder.solve r with
    | Engine.Unknown (Engine.Crashed _) -> true
    | _ -> false)

(* --- encoding vs the engine: random hom instances --- *)

let random_structure ?(zero = false) seed =
  let st = Random.State.make [| seed |] in
  let n = 1 + Random.State.int st 4 in
  let nodes = List.init n (fun v -> (v, None)) in
  let edges = ref [] in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if Random.State.float st 1.0 < 0.35 then edges := [| a; b |] :: !edges
    done
  done;
  let tuples = [ ("E", !edges) ] in
  (* occasionally a 0-ary fact: present in the source but not the
     target must force Unsat (the engine's zero_ok semantics) *)
  let tuples =
    if zero && Random.State.int st 3 = 0 then ("P", [ [||] ]) :: tuples
    else tuples
  in
  Structure.make ~nodes ~tuples

(* a source with a deliberately interchangeable block: k front nodes
   share their attachment pattern (and optionally form a clique), so the
   symmetry breaker has real classes to order *)
let symmetric_source seed =
  let st = Random.State.make [| seed |] in
  let k = 2 + Random.State.int st 3 in
  let anchors = 1 + Random.State.int st 2 in
  let nodes = List.init (k + anchors) (fun v -> (v, None)) in
  let edges = ref [] in
  for a = 0 to anchors - 1 do
    if Random.State.bool st then
      for i = 0 to k - 1 do
        edges := [| i; k + a |] :: !edges
      done
  done;
  if Random.State.bool st then
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        if i <> j then edges := [| i; j |] :: !edges
      done
    done;
  Structure.make ~nodes ~tuples:[ ("E", !edges) ]

let qcheck_sat_vs_engine =
  QCheck.Test.make ~count:300
    ~name:"SAT backend agrees with the engine (0-ary facts included)"
    QCheck.(pair (int_range 0 20000) (int_range 0 20000))
    (fun (s1, s2) ->
      let source = random_structure ~zero:true s1
      and target = random_structure ~zero:true s2 in
      match (Backend.solve ~source ~target (), Engine.solve ~source ~target ())
      with
      | Engine.Sat h, Engine.Sat _ -> Engine.is_hom ~source ~target h
      | Engine.Unsat, Engine.Unsat -> true
      | Engine.Unknown _, _ | _, Engine.Unknown _ ->
        QCheck.Test.fail_report "Unknown under an unlimited budget"
      | _ -> false)

let qcheck_sat_vs_reference =
  QCheck.Test.make ~count:300
    ~name:"SAT backend agrees with Engine.Reference (no 0-ary facts)"
    QCheck.(pair (int_range 0 20000) (int_range 0 20000))
    (fun (s1, s2) ->
      let source = random_structure s1 and target = random_structure s2 in
      match
        ( Backend.satisfiable ~source ~target (),
          Engine.Reference.satisfiable ~source ~target () )
      with
      | Engine.Sat (), Engine.Sat () | Engine.Unsat, Engine.Unsat -> true
      | Engine.Unknown _, _ | _, Engine.Unknown _ ->
        QCheck.Test.fail_report "Unknown under an unlimited budget"
      | _ -> false)

let qcheck_symmetry_sound =
  QCheck.Test.make ~count:300
    ~name:"symmetry-breaking clauses never change satisfiability"
    QCheck.(pair (int_range 0 20000) (int_range 0 20000))
    (fun (s1, s2) ->
      let source = symmetric_source s1 and target = random_structure s2 in
      let with_sym = Backend.satisfiable ~symmetry:true ~source ~target ()
      and without = Backend.satisfiable ~symmetry:false ~source ~target () in
      match (with_sym, without) with
      | Engine.Sat (), Engine.Sat () | Engine.Unsat, Engine.Unsat -> true
      | _ -> false)

let test_encode_edges () =
  (* empty source: the empty hom, trivially Sat *)
  let empty = Structure.make ~nodes:[] ~tuples:[] in
  let k2 =
    Structure.make
      ~nodes:[ (0, None); (1, None) ]
      ~tuples:[ ("E", [ [| 0; 1 |]; [| 1; 0 |] ]) ]
  in
  check "empty source" true
    (Backend.satisfiable ~source:empty ~target:k2 () = Engine.Sat ());
  (* empty candidate domain: the target has no E tuples at all *)
  let loop =
    Structure.make ~nodes:[ (0, None) ] ~tuples:[ ("E", [ [| 0; 0 |] ]) ]
  in
  let no_edges = Structure.make ~nodes:[ (0, None); (1, None) ] ~tuples:[] in
  check "missing target relation" true
    (Backend.satisfiable ~source:loop ~target:no_edges () = Engine.Unsat);
  (* budget mapping: conflicts tick the backtrack budget *)
  let tri =
    Structure.make
      ~nodes:[ (0, None); (1, None); (2, None) ]
      ~tuples:[ ("E", [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 0 |] ]) ]
  in
  check "conflict budget surfaces" true
    (Backend.satisfiable
       ~config:
         (Engine.Config.make ~limits:(Engine.Limits.make ~backtracks:0 ()) ())
       ~source:tri ~target:k2 ()
    = Engine.Unknown Engine.Backtrack_budget)

let test_interchangeable_classes () =
  (* three nodes with identical attachments and a distinct anchor: one
     class of three, the anchor in none *)
  let source =
    Structure.make
      ~nodes:[ (0, None); (1, None); (2, None); (3, None) ]
      ~tuples:[ ("E", [ [| 0; 3 |]; [| 1; 3 |]; [| 2; 3 |] ]) ]
  in
  let target =
    Structure.make
      ~nodes:[ (0, None); (1, None) ]
      ~tuples:[ ("E", [ [| 0; 1 |] ]) ]
  in
  let compiled = Engine.compile ~source ~target () in
  match Encode.interchangeable_classes compiled with
  | [| cls |] -> check "class of three" true (Array.length cls = 3)
  | other ->
    Alcotest.failf "expected one class, got %d" (Array.length other)

(* --- Boolean-CQ certainty through the SAT backend --- *)

let triangle_cq =
  Cq.boolean
    [
      ("E", [ v "x"; v "y" ]); ("E", [ v "y"; v "z" ]); ("E", [ v "z"; v "x" ]);
    ]

let k2 = Instance.of_list [ ("E", [ [ c 1; c 2 ]; [ c 2; c 1 ] ]) ]

let k3 =
  Instance.of_list
    [
      ( "E",
        [
          [ c 1; c 2 ]; [ c 2; c 1 ]; [ c 1; c 3 ]; [ c 3; c 1 ];
          [ c 2; c 3 ]; [ c 3; c 2 ];
        ] );
    ]

let test_certain_sat_agrees () =
  List.iter
    (fun (q, d) ->
      let sat = Certain.certain_cq_via_sat_b q d in
      let csp = Certain.certain_cq_via_hom_b q d in
      check "sat = csp" true (sat = csp))
    [ (triangle_cq, k2); (triangle_cq, k3) ];
  check "triangle not certain in k2" true
    (Certain.certain_cq_via_sat_b triangle_cq k2 = `False);
  check "triangle certain in k3" true
    (Certain.certain_cq_via_sat_b triangle_cq k3 = `True)

let test_certain_dimacs () =
  let s = Certain.certain_cq_dimacs triangle_cq k2 in
  check "dimacs header" true (contains ~sub:"p cnf " s);
  check "zero_ok comment" true
    (contains ~sub:"zero_ok=true" s)

(* satellite (c): the injected-conflict fault surfaces as a Crashed
   Unknown from the SAT route, and the resilient ladder crosses to the
   CSP backend instead of degrading *)
let test_certain_sat_fault () =
  Fault.with_armed [ ("csp.sat.conflict", Fault.Every 1) ] @@ fun () ->
  match Certain.certain_cq_via_sat_b triangle_cq k2 with
  | `Unknown (Engine.Crashed "csp.sat.conflict") -> ()
  | _ -> Alcotest.fail "expected Unknown (Crashed csp.sat.conflict)"

let test_certain_sat_crash_crosses_to_csp () =
  let before = counter_value "csp.resilient.crossed" in
  let answer =
    Fault.with_armed [ ("csp.sat.conflict", Fault.Every 1) ] @@ fun () ->
    Certain.certain_cq_resilient ~backend:Backend.Sat triangle_cq k2
  in
  (* every CDCL attempt crashed; the CSP rung still settles it exactly *)
  check "exact despite sat crash" true (answer = `Exact false);
  Alcotest.(check int)
    "crossed counted" (before + 1)
    (counter_value "csp.resilient.crossed")

let test_certain_backends_never_flip () =
  List.iter
    (fun backend ->
      check "triangle/k2 false" true
        (Certain.certain_cq_resilient ~backend triangle_cq k2 = `Exact false);
      check "triangle/k3 true" true
        (Certain.certain_cq_resilient ~backend triangle_cq k3 = `Exact true))
    [ Backend.Csp; Backend.Sat; Backend.Auto ]

(* --- the planner's SAT route --- *)

let clique_cq k =
  let vars = List.init k (fun i -> "x" ^ string_of_int i) in
  Cq.boolean
    (List.concat_map
       (fun a ->
         List.filter_map
           (fun b -> if a <> b then Some ("E", [ v a; v b ]) else None)
           vars)
       vars)

let test_plan_sat_route () =
  (* auto: cyclic, wide, dense, and fully interchangeable — the SAT
     certificate fires with the whole clique as one class *)
  (match (Plan.route_cq ~backend:Backend.Auto (clique_cq 4)).Plan.route with
  | Plan.Sat_backend k -> Alcotest.(check int) "class size" 4 k
  | r -> Alcotest.failf "auto routed to %s" (Plan.route_to_string r));
  (* the default backend never routes to SAT: pinned outputs stay put *)
  (match (Plan.route_cq (clique_cq 4)).Plan.route with
  | Plan.Sat_backend _ -> Alcotest.fail "csp default must not route to SAT"
  | _ -> ());
  (* an acyclic query is never SAT-eligible under auto *)
  (match
     (Plan.route_cq ~backend:Backend.Auto
        (Cq.boolean [ ("E", [ v "x"; v "y" ]) ]))
       .Plan.route
   with
  | Plan.Sat_backend _ -> Alcotest.fail "acyclic query routed to SAT"
  | _ -> ());
  (* explicit --backend sat forces the route, and the counter tracks it *)
  let before = counter_value "query.plan.sat" in
  check "forced route answers" true
    (Plan.certain ~backend:Backend.Sat triangle_cq k3 = `Exact true);
  Alcotest.(check int)
    "query.plan.sat counted" (before + 1)
    (counter_value "query.plan.sat")

let () =
  Alcotest.run "sat"
    [
      ( "cdcl",
        [
          Alcotest.test_case "sat model" `Quick test_cdcl_sat_model;
          Alcotest.test_case "assumptions" `Quick test_cdcl_assumptions;
          Alcotest.test_case "empty clause" `Quick test_cdcl_empty_clause;
          Alcotest.test_case "pigeonhole" `Quick test_cdcl_pigeonhole;
          Alcotest.test_case "budgets and cancel" `Quick test_cdcl_budgets;
          Alcotest.test_case "conflict fault point" `Quick
            test_cdcl_fault_point;
          Alcotest.test_case "dimacs recorder" `Quick test_recorder;
        ] );
      ( "encoding",
        [
          QCheck_alcotest.to_alcotest qcheck_sat_vs_engine;
          QCheck_alcotest.to_alcotest qcheck_sat_vs_reference;
          QCheck_alcotest.to_alcotest qcheck_symmetry_sound;
          Alcotest.test_case "edge cases and budgets" `Quick test_encode_edges;
          Alcotest.test_case "interchangeable classes" `Quick
            test_interchangeable_classes;
        ] );
      ( "certainty",
        [
          Alcotest.test_case "agrees with hom check" `Quick
            test_certain_sat_agrees;
          Alcotest.test_case "dimacs export" `Quick test_certain_dimacs;
          Alcotest.test_case "fault surfaces as crash" `Quick
            test_certain_sat_fault;
          Alcotest.test_case "crash crosses to csp" `Quick
            test_certain_sat_crash_crosses_to_csp;
          Alcotest.test_case "backends never flip" `Quick
            test_certain_backends_never_flip;
        ] );
      ( "routing",
        [ Alcotest.test_case "sat route" `Quick test_plan_sat_route ] );
    ]
