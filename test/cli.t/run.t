Locate the binary (dune places cram deps at workspace-relative paths):

  $ CERTDB=$(find . ../.. -name 'certdb.exe' 2>/dev/null | head -1)
  $ echo found
  found

Information ordering:

  $ $CERTDB leq "R(1,_x)" "R(1,2)"
  true
  witness: {_|_1 -> 2}

  $ $CERTDB leq "R(1,1)" "R(1,2)"
  false
  [1]

Certain information (glb) with core reduction (null ids normalized):

  $ $CERTDB glb --core "R(1,_x); R(_x,2)" "R(1,9); R(9,2)" | sed 's/_n[0-9]*/_n?/g'
  R(1, _n?); R(_n?, 2)

Membership:

  $ $CERTDB member "R(1,_x)" "R(1,2); R(3,4)"
  true

  $ $CERTDB member "R(1,_x)" "R(3,4)"
  false
  [1]

Closed-world ordering with the Prop. 8 check on Codd inputs:

  $ $CERTDB cwa "R(_x)" "R(1); R(2)"
  false
  via Prop. 8 (hoare + Hall): false
  [1]

Certain answers of a conjunctive query:

  $ $CERTDB certain -q "ans(_x) :- R(_x,_y), R(_y,_x)" "R(1,2); R(2,1); R(3,_u)"
  ans(1); ans(2)

Graded Boolean certainty: --degrade answers exact when the budgeted hom
check settles, and degrades to a sound naive lower bound (never an
unknown) when every attempt trips its budget:

  $ $CERTDB certain --degrade -q "ans() :- R(_x,_y), R(_y,_x)" "R(1,2); R(2,1)"
  exact: true

  $ $CERTDB certain --degrade --node-budget 0 --max-attempts 1 -q "ans() :- R(_x,_y), R(_y,_x)" "R(1,2); R(2,1)"
  lower-bound: true

  $ $CERTDB certain --degrade -q "ans(_x) :- R(_x,_y)" "R(1,2)"
  --degrade applies to Boolean queries (empty head): the graded answer is a single certified truth value
  [2]

The chase:

  $ $CERTDB chase --tgd "S(_x,_y) -> T(_x,_z); T(_z,_y)" "S(1,2)" | sed 's/_n[0-9]*/_n?/g'
  T(1, _n?); T(_n?, 2)

Tree commands:

  $ $CERTDB tree-leq "catalog[book(1,_y)]" "catalog[book(1,1999); book(2,2000)]"
  true

  $ $CERTDB tree-glb "r[a(1)]" "r[a(1); a(2)]"
  r[a(1)]

  $ $CERTDB tree-member "r[a(_x)]" "r[a(7)]"
  true

Parse errors exit with code 2:

  $ $CERTDB leq "R(" "R(1)"
  parse error: expected a value
  [2]

Reading an instance from a file with @:

  $ printf 'R(1,_x); R(_x,2)' > inst.txt
  $ $CERTDB leq @inst.txt "R(1,9); R(9,2)"
  true
  witness: {_|_1 -> 9}

First-order certainty:

  $ $CERTDB certain-fo -q "exists x. R(x) and not S(x)" --mode cwa "R(_u)"
  true

  $ $CERTDB certain-fo -q "forall x. R(x) -> x = 1" --mode cwa "R(1); R(_u)"
  false
  [1]

Batch: a JSONL stream of independent budgeted problems solved on a
domain pool; output order equals input order regardless of --jobs, and
a tripped budget is reported as unknown, never as a wrong answer:

  $ cat > batch.jsonl <<'EOF'
  > {"op":"leq","d1":"R(1,_x)","d2":"R(1,2)"}
  > {"id":"starved","op":"leq","d1":"R(_a,_b); R(_b,_c); R(_c,_a)","d2":"R(1,2); R(2,1)","node_budget":2}
  > {"op":"member","d":"R(1,_x)","r":"R(1,2); R(3,4)"}
  > {"op":"certain","query":"ans() :- R(_x,_y)","d":"R(1,_u)"}
  > EOF
  $ $CERTDB batch --jobs 2 batch.jsonl
  {"id":"0","index":0,"op":"leq","status":"sat","witness":"{_|_1 -> 2}"}
  {"id":"starved","index":1,"op":"leq","status":"unknown","reason":"node-budget"}
  {"id":"2","index":2,"op":"member","status":"sat"}
  {"id":"3","index":3,"op":"certain","status":"sat"}

An error line makes the exit code 1, but the other lines still run:

  $ printf '{"op":"bogus"}\n{"op":"member","d":"R(5,_x)","r":"R(1,2)"}\n' | $CERTDB batch --jobs 2 -
  {"id":"0","index":0,"op":"bogus","status":"error","error":"unknown op \"bogus\""}
  {"id":"1","index":1,"op":"member","status":"unsat"}
  [1]

A malformed JSONL line mid-stream is isolated the same way — a
structured error record, and the rest of the stream still runs:

  $ printf '{"op":"member","d":"R(1,_x)","r":"R(1,2)"}\n{"op":"leq","broken\n{"op":"member","d":"R(5,_x)","r":"R(1,2)"}\n' | $CERTDB batch --jobs 2 -
  {"id":"0","index":0,"op":"member","status":"sat"}
  {"id":"line-1","index":1,"op":"?","status":"error","error":"json: unterminated string at offset 19"}
  {"id":"2","index":2,"op":"member","status":"unsat"}
  [1]

--max-attempts retries an unknown with escalated budgets: the starved
task from above settles on attempt 2 once its node budget is multiplied
by --escalate:

  $ $CERTDB batch --jobs 2 --max-attempts 3 --escalate 10 batch.jsonl
  {"id":"0","index":0,"op":"leq","status":"sat","witness":"{_|_1 -> 2}","attempts":1}
  {"id":"starved","index":1,"op":"leq","status":"unsat","attempts":2}
  {"id":"2","index":2,"op":"member","status":"sat","attempts":1}
  {"id":"3","index":3,"op":"certain","status":"sat","attempts":1}

Deterministic fault injection (CERTDB_FAULT): poison the second batch
task; under the default --on-error continue the crash is isolated as an
error record and every other task still runs:

  $ CERTDB_FAULT='csp.batch.task@2' $CERTDB batch --jobs 2 batch.jsonl
  {"id":"0","index":0,"op":"leq","status":"sat","witness":"{_|_1 -> 2}"}
  {"id":"starved","index":1,"op":"leq","status":"error","error":"injected fault at csp.batch.task"}
  {"id":"2","index":2,"op":"member","status":"sat"}
  {"id":"3","index":3,"op":"certain","status":"sat"}
  [1]

Under --on-error fail-fast the first failure stops the pool: tasks not
yet started are reported as skipped:

  $ CERTDB_FAULT='csp.batch.task@2' $CERTDB batch --jobs 1 --on-error fail-fast batch.jsonl
  {"id":"0","index":0,"op":"leq","status":"sat","witness":"{_|_1 -> 2}"}
  {"id":"starved","index":1,"op":"leq","status":"error","error":"injected fault at csp.batch.task"}
  {"id":"2","index":2,"op":"member","status":"skipped"}
  {"id":"3","index":3,"op":"certain","status":"skipped"}
  [1]

A malformed CERTDB_FAULT spec refuses to start:

  $ CERTDB_FAULT='no-trigger-here' $CERTDB leq "R(1)" "R(1)"
  CERTDB_FAULT: entry "no-trigger-here": expected point@N, point%N or point~SEED:PM
  [2]

Observability: --stats prints a metrics snapshot to stderr after the
subcommand runs (timing fields redacted for determinism):

  $ $CERTDB leq --stats "R(1,_x)" "R(1,2)" 2>&1 | sed -E 's/[0-9]+\.[0-9]+/<ms>/g'
  true
  witness: {_|_1 -> 2}
  == metrics ==
  counters:
    analysis.fd.checks              0
    analysis.footprint.computed     0
    analysis.independence.checks    0
    csp.ac3.prunes                  0
    csp.ac3.revisions               0
    csp.ac3.wipeouts                0
    csp.analysis.hypergraph         0
    csp.analysis.monotone           0
    csp.analysis.safety             0
    csp.analysis.weak_acyclicity    0
    csp.batch.errors                0
    csp.batch.runs                  0
    csp.batch.skipped               0
    csp.batch.tasks                 0
    csp.btw.bag_assignments         0
    csp.btw.solves                  0
    csp.components.solved           0
    csp.components.splits           0
    csp.engine.exists_skipped_vars  0
    csp.engine.unknowns             0
    csp.enumerate.visited           0
    csp.resilient.attempts          0
    csp.resilient.crossed           0
    csp.resilient.crossed_recovered 0
    csp.resilient.exhausted         0
    csp.resilient.propagation_unsat 0
    csp.resilient.recovered         0
    csp.resilient.retries           0
    csp.resilient.runs              0
    csp.sat.conflicts               0
    csp.sat.decisions               0
    csp.sat.learned                 0
    csp.sat.propagations            0
    csp.sat.restarts                0
    csp.sat.solves                  0
    csp.solver.backtracks           0
    csp.solver.decisions            0
    csp.solver.fc_prunes            0
    csp.solver.mrv_selects          0
    csp.solver.naive.decisions      0
    csp.solver.searches             0
    csp.solver.solutions            0
    csp.solver.wipeouts             0
    exchange.chase.certified        0
    exchange.chase.facts            0
    exchange.chase.runs             0
    exchange.chase.steps            0
    exchange.chase.uncertified      0
    fault.injected                  0
    gdm.ghom.candidate_checks       0
    gdm.ghom.nodes                  0
    gdm.ghom.searches               0
    gdm.ghom.solutions              0
    query.answer_tuples             0
    query.certain_checks            0
    query.naive_evals               0
    query.plan.acyclic_join         0
    query.plan.bounded_width        0
    query.plan.components           0
    query.plan.fd_naive             0
    query.plan.hom_ladder           0
    query.plan.naive_eval           0
    query.plan.sat                  0
    query.resilient.degraded        0
    query.resilient.exact           0
    rel.glb.merged_facts            0
    rel.glb.pairs                   0
    rel.hom.candidate_checks        1
    rel.hom.nodes                   2
    rel.hom.searches                1
    rel.hom.solutions               1
    rel.lub.pairs                   0
    service.client.overloaded       0
    service.client.retries          0
    service.server.accepted         0
    service.server.crashed          0
    service.server.shed             0
    service.server.timeouts         0
    xml.resilient.degraded          0
    xml.resilient.exact             0
    xml.tree_hom.searches           0
  gauges:
    csp.btw.bags                    0
    csp.components.count            0
    service.server.inflight         0
    service.server.queue_depth      0
  timers (ms):
    rel.hom.search                  count=1 total=<ms> mean=<ms> min=<ms> max=<ms> p50=<ms> p95=<ms> p99=<ms>

--stats-json emits a single JSON object to stderr, leaving stdout alone:

  $ $CERTDB glb --stats-json "R(1,_x)" "R(1,2)" 2>&1 >/dev/null | tr ',' '\n' | grep -E 'rel\.glb\.(pairs|merged_facts)'
  "rel.glb.merged_facts":1
  "rel.glb.pairs":1

The stats self-test runs a fixed workload through every instrumented
subsystem and exits nonzero if a hot-path counter stays at zero:

  $ $CERTDB stats > /dev/null && echo self-test-ok
  self-test-ok

  $ $CERTDB stats --json | tr ',' '\n' | grep -E '"(csp.solver.decisions|exchange.chase.steps|xml.tree_hom.searches)":'
  "csp.solver.decisions":10
  "exchange.chase.steps":1
  "xml.tree_hom.searches":1}

--openmetrics prints the snapshot as an OpenMetrics text exposition and
lints it (duplicate or invalid metric names fail the command):

  $ $CERTDB stats --openmetrics > om.txt && echo lint-ok
  lint-ok
  $ grep -cE '^# TYPE certdb_csp_solver_decisions counter$' om.txt
  1
  $ grep -cE '^certdb_rel_hom_search\{quantile="0.99"\}' om.txt
  1
  $ tail -1 om.txt
  # EOF

certain --explain prints the request's trace summary (route, span tree)
as one JSON line on stderr:

  $ $CERTDB certain --explain -q 'ans() :- R(_x,_y), R(_y,_x)' 'R(1,2); R(2,1)' 2>&1 >/dev/null | grep -oE '"(root|route)":"[^"]*"' | sort -u
  "root":"certdb.certain"
  "route":"acyclic-join"
