Locate the binary (dune places cram deps at workspace-relative paths):

  $ CERTDB=$(find . ../.. -name 'certdb.exe' 2>/dev/null | head -1)
  $ echo found
  found

Information ordering:

  $ $CERTDB leq "R(1,_x)" "R(1,2)"
  true
  witness: {_|_1 -> 2}

  $ $CERTDB leq "R(1,1)" "R(1,2)"
  false
  [1]

Certain information (glb) with core reduction (null ids normalized):

  $ $CERTDB glb --core "R(1,_x); R(_x,2)" "R(1,9); R(9,2)" | sed 's/_n[0-9]*/_n?/g'
  R(1, _n?); R(_n?, 2)

Membership:

  $ $CERTDB member "R(1,_x)" "R(1,2); R(3,4)"
  true

  $ $CERTDB member "R(1,_x)" "R(3,4)"
  false
  [1]

Closed-world ordering with the Prop. 8 check on Codd inputs:

  $ $CERTDB cwa "R(_x)" "R(1); R(2)"
  false
  via Prop. 8 (hoare + Hall): false
  [1]

Certain answers of a conjunctive query:

  $ $CERTDB certain -q "ans(_x) :- R(_x,_y), R(_y,_x)" "R(1,2); R(2,1); R(3,_u)"
  ans(1); ans(2)

The chase:

  $ $CERTDB chase --tgd "S(_x,_y) -> T(_x,_z); T(_z,_y)" "S(1,2)" | sed 's/_n[0-9]*/_n?/g'
  T(1, _n?); T(_n?, 2)

Tree commands:

  $ $CERTDB tree-leq "catalog[book(1,_y)]" "catalog[book(1,1999); book(2,2000)]"
  true

  $ $CERTDB tree-glb "r[a(1)]" "r[a(1); a(2)]"
  r[a(1)]

  $ $CERTDB tree-member "r[a(_x)]" "r[a(7)]"
  true

Parse errors exit with code 2:

  $ $CERTDB leq "R(" "R(1)"
  parse error: expected a value
  [2]

Reading an instance from a file with @:

  $ printf 'R(1,_x); R(_x,2)' > inst.txt
  $ $CERTDB leq @inst.txt "R(1,9); R(9,2)"
  true
  witness: {_|_1 -> 9}

First-order certainty:

  $ $CERTDB certain-fo -q "exists x. R(x) and not S(x)" --mode cwa "R(_u)"
  true

  $ $CERTDB certain-fo -q "forall x. R(x) -> x = 1" --mode cwa "R(1); R(_u)"
  false
  [1]
