(* Tests for values, valuations and the ⊗-merge. *)

open Certdb_values

let check = Alcotest.(check bool)

let test_value_basics () =
  check "const eq" true (Value.equal (Value.int 3) (Value.int 3));
  check "const neq" false (Value.equal (Value.int 3) (Value.int 4));
  check "int vs str" false (Value.equal (Value.int 3) (Value.str "3"));
  check "null eq" true (Value.equal (Value.null 1) (Value.null 1));
  check "null vs const" false (Value.equal (Value.null 3) (Value.int 3));
  check "is_null" true (Value.is_null (Value.null 1));
  check "is_const" true (Value.is_const (Value.str "a"))

let test_fresh () =
  let a = Value.fresh_null () and b = Value.fresh_null () in
  check "fresh nulls distinct" false (Value.equal a b);
  let c = Value.fresh_const () and d = Value.fresh_const () in
  check "fresh consts distinct" false (Value.equal c d);
  check "fresh const is const" true (Value.is_const c)

let test_ordering_total () =
  let vs =
    [ Value.int 1; Value.int 2; Value.str "a"; Value.null 1; Value.null 2 ]
  in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          let c1 = Value.compare x y and c2 = Value.compare y x in
          check "antisymmetric" true
            (if c1 = 0 then c2 = 0 else c1 * c2 < 0))
        vs)
    vs

let test_valuation_apply () =
  let n = Value.null 500 in
  let h = Valuation.bind Valuation.empty n (Value.int 7) in
  check "apply bound" true (Value.equal (Valuation.apply h n) (Value.int 7));
  check "apply const is id" true
    (Value.equal (Valuation.apply h (Value.int 9)) (Value.int 9));
  check "apply unbound null is id" true
    (Value.equal (Valuation.apply h (Value.null 501)) (Value.null 501))

let test_valuation_bind_conflict () =
  let n = Value.null 502 in
  let h = Valuation.bind Valuation.empty n (Value.int 1) in
  check "bind same ok" true
    (Option.is_some (Valuation.bind_opt h n (Value.int 1)));
  check "bind conflict" false
    (Option.is_some (Valuation.bind_opt h n (Value.int 2)));
  Alcotest.check_raises "bind raises on const domain"
    (Invalid_argument "Valuation.bind: domain element is not a null")
    (fun () -> ignore (Valuation.bind Valuation.empty (Value.int 1) (Value.int 1)))

let test_unify () =
  let n1 = Value.null 503 and n2 = Value.null 504 in
  (match Valuation.unify_lists Valuation.empty
           [ n1; Value.int 2; n1 ]
           [ Value.int 5; Value.int 2; Value.int 5 ]
   with
  | Some h ->
    check "n1 -> 5" true (Value.equal (Valuation.apply h n1) (Value.int 5))
  | None -> Alcotest.fail "unify should succeed");
  check "clash on repeated null" false
    (Option.is_some
       (Valuation.unify_lists Valuation.empty [ n1; n1 ]
          [ Value.int 1; Value.int 2 ]));
  check "clash on constants" false
    (Option.is_some
       (Valuation.unify Valuation.empty (Value.int 1) (Value.int 2)));
  check "null target ok" true
    (Option.is_some (Valuation.unify Valuation.empty n1 n2))

let test_compose () =
  let n1 = Value.null 505 and n2 = Value.null 506 in
  let f = Valuation.bind Valuation.empty n1 n2 in
  let g = Valuation.bind Valuation.empty n2 (Value.int 3) in
  let fg = Valuation.compose f g in
  check "compose applies g after f" true
    (Value.equal (Valuation.apply fg n1) (Value.int 3));
  check "compose keeps g" true
    (Value.equal (Valuation.apply fg n2) (Value.int 3))

let test_grounding () =
  let nulls =
    Value.Set.of_list [ Value.null 507; Value.null 508; Value.null 509 ]
  in
  let h = Valuation.grounding_of_nulls nulls in
  check "grounding" true (Valuation.is_grounding h);
  check "injective" true (Valuation.is_injective h);
  Alcotest.(check int) "all bound" 3 (Valuation.cardinal h)

let test_merge () =
  let reg = Merge.create () in
  let a = Value.int 1 and b = Value.int 2 in
  check "equal consts merge to themselves" true
    (Value.equal (Merge.value reg a a) a);
  let m1 = Merge.value reg a b in
  check "distinct consts merge to null" true (Value.is_null m1);
  let m2 = Merge.value reg a b in
  check "same pair same null" true (Value.equal m1 m2);
  let m3 = Merge.value reg b a in
  check "swapped pair different null" false (Value.equal m1 m3);
  let l = Merge.left_valuation reg and r = Merge.right_valuation reg in
  check "left projection" true (Value.equal (Valuation.apply l m1) a);
  check "right projection" true (Value.equal (Valuation.apply r m1) b)

let test_merge_null_pairs () =
  let reg = Merge.create () in
  let n = Value.null 510 in
  let m = Merge.value reg n n in
  check "null pair merges to fresh null" true (Value.is_null m);
  check "not the same null" false (Value.equal m n)

let test_merge_arrays () =
  let reg = Merge.create () in
  let xs = [| Value.int 1; Value.int 2 |] in
  let ys = [| Value.int 1; Value.int 3 |] in
  let zs = Merge.arrays reg xs ys in
  check "first kept" true (Value.equal zs.(0) (Value.int 1));
  check "second merged" true (Value.is_null zs.(1));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Merge.arrays: length mismatch") (fun () ->
      ignore (Merge.arrays reg xs [| Value.int 1 |]))

(* property tests *)
let value_gen =
  QCheck.Gen.(
    oneof
      [
        map Value.int (int_range 0 5);
        map Value.null (int_range 0 5);
        map Value.str (oneofl [ "a"; "b" ]);
      ])

let arb_value = QCheck.make ~print:Value.to_string value_gen

let prop_compare_reflexive =
  QCheck.Test.make ~name:"compare reflexive" arb_value (fun v ->
      Value.compare v v = 0)

let prop_compare_transitive =
  QCheck.Test.make ~name:"compare transitive"
    QCheck.(triple arb_value arb_value arb_value)
    (fun (a, b, c) ->
      (not (Value.compare a b <= 0 && Value.compare b c <= 0))
      || Value.compare a c <= 0)

let prop_merge_projections =
  QCheck.Test.make ~name:"merge projections recover operands"
    QCheck.(pair arb_value arb_value)
    (fun (x, y) ->
      let reg = Merge.create () in
      let m = Merge.value reg x y in
      let l = Merge.left_valuation reg and r = Merge.right_valuation reg in
      Value.equal (Valuation.apply l m) x && Value.equal (Valuation.apply r m) y)

let () =
  Alcotest.run "values"
    [
      ( "value",
        [
          Alcotest.test_case "basics" `Quick test_value_basics;
          Alcotest.test_case "fresh" `Quick test_fresh;
          Alcotest.test_case "total order" `Quick test_ordering_total;
        ] );
      ( "valuation",
        [
          Alcotest.test_case "apply" `Quick test_valuation_apply;
          Alcotest.test_case "bind conflicts" `Quick test_valuation_bind_conflict;
          Alcotest.test_case "unify" `Quick test_unify;
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "grounding" `Quick test_grounding;
        ] );
      ( "merge",
        [
          Alcotest.test_case "pairs" `Quick test_merge;
          Alcotest.test_case "null pairs" `Quick test_merge_null_pairs;
          Alcotest.test_case "arrays" `Quick test_merge_arrays;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_compare_reflexive; prop_compare_transitive; prop_merge_projections ] );
    ]
