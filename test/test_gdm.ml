(* Tests for the generalized data model (Section 5): homomorphisms, the
   information ordering, the ∧Σ and ∧K glbs, the relational/XML codings,
   FO(S,∼) and the Theorem 6/7 algorithms. *)

open Certdb_values
open Certdb_gdm

let check = Alcotest.(check bool)
let n1 = Value.null 6001
let n2 = Value.null 6002
let c i = Value.int i

(* The paper's running relational example coded as a generalized database:
   { R(1,⊥1), S(⊥1,⊥2,2) } *)
let paper_gdb =
  Gdb.make
    ~nodes:[ (0, "R", [ c 1; n1 ]); (1, "S", [ n1; n2; c 2 ]) ]
    ~tuples:[]

let test_gdb_basics () =
  Alcotest.(check int) "size" 2 (Gdb.size paper_gdb);
  Alcotest.(check string) "label" "R" (Gdb.label paper_gdb 0);
  Alcotest.(check int) "nulls" 2 (Value.Set.cardinal (Gdb.nulls paper_gdb));
  check "codd" true (Gdb.codd paper_gdb = false);
  (* ⊥1 occurs twice: not Codd *)
  check "incomplete" false (Gdb.is_complete paper_gdb)

let test_conforms () =
  let schema =
    Gschema.make ~alphabet:[ ("R", 2); ("S", 3) ] ~sigma:[]
  in
  check "conforms" true (Gdb.conforms paper_gdb schema);
  let bad = Gschema.make ~alphabet:[ ("R", 1); ("S", 3) ] ~sigma:[] in
  check "wrong arity" false (Gdb.conforms paper_gdb bad)

let test_hom_data_coupling () =
  (* node data sharing ⊥1 must agree after mapping *)
  let target_good =
    Gdb.make
      ~nodes:[ (0, "R", [ c 1; c 7 ]); (1, "S", [ c 7; c 9; c 2 ]) ]
      ~tuples:[]
  in
  let target_bad =
    Gdb.make
      ~nodes:[ (0, "R", [ c 1; c 7 ]); (1, "S", [ c 8; c 9; c 2 ]) ]
      ~tuples:[]
  in
  check "coupled hom" true (Gordering.leq paper_gdb target_good);
  check "coupling violated" false (Gordering.leq paper_gdb target_bad)

let test_hom_structure_preserved () =
  let tree_schema_db edges =
    let db =
      List.fold_left
        (fun db i -> Gdb.add_node db ~node:i ~label:"a" ~data:[])
        Gdb.empty [ 0; 1; 2 ]
    in
    List.fold_left (fun db (x, y) -> Gdb.add_tuple db "child" [ x; y ]) db edges
  in
  let chain = tree_schema_db [ (0, 1); (1, 2) ] in
  let star = tree_schema_db [ (0, 1); (0, 2) ] in
  check "chain into chain" true (Gordering.leq chain chain);
  check "chain not into star" false (Gordering.leq chain star)

let test_ordering_prop9 () =
  (* ⊑ agrees with the relational ordering through the coding *)
  let open Certdb_relational in
  for seed = 0 to 12 do
    let mk s =
      Codd.random_naive ~seed:s ~schema:[ ("R", 2); ("S", 1) ] ~facts:4
        ~null_prob:0.4 ~domain:2 ~null_pool:2 ()
    in
    let d = mk seed and d' = mk (seed + 600) in
    check
      (Printf.sprintf "seed %d: coding preserves ⊑" seed)
      (Ordering.leq d d')
      (Gordering.leq (Encode.of_instance d) (Encode.of_instance d'))
  done

let test_glb_sigma_relational_matches_prop5 () =
  (* Theorem 4 with σ = ∅ yields the relational ⊗-product construction *)
  let open Certdb_relational in
  for seed = 0 to 10 do
    let mk s =
      Codd.random_naive ~seed:s ~schema:[ ("R", 2) ] ~facts:3 ~null_prob:0.4
        ~domain:2 ~null_pool:2 ()
    in
    let r1 = mk seed and r2 = mk (seed + 700) in
    let via_gdm =
      Encode.to_instance (Gglb.glb_sigma (Encode.of_instance r1) (Encode.of_instance r2))
    in
    let via_relational = Glb.glb r1 r2 in
    check
      (Printf.sprintf "seed %d: gdm glb ~ relational glb" seed)
      true
      (Ordering.equiv via_gdm via_relational)
  done

let test_glb_sigma_is_glb () =
  let d1 =
    Gdb.make ~nodes:[ (0, "a", [ c 1 ]); (1, "a", [ c 2 ]) ]
      ~tuples:[ ("E", [ [ 0; 1 ] ]) ]
  in
  let d2 =
    Gdb.make ~nodes:[ (0, "a", [ c 1 ]); (1, "a", [ c 3 ]) ]
      ~tuples:[ ("E", [ [ 0; 1 ] ]) ]
  in
  let g, left, right = Gglb.glb_sigma_full d1 d2 in
  check "left witness" true (Ghom.is_hom left g d1);
  check "right witness" true (Ghom.is_hom right g d2);
  (* any common lower bound maps into the glb *)
  let lb =
    Gdb.make ~nodes:[ (0, "a", [ c 1 ]); (1, "a", [ n1 ]) ]
      ~tuples:[ ("E", [ [ 0; 1 ] ]) ]
  in
  check "lb below d1" true (Gordering.leq lb d1);
  check "lb below d2" true (Gordering.leq lb d2);
  check "lb below glb" true (Gordering.leq lb g)

let test_glb_in_class_trees () =
  (* ∧K for trees through the xml library's structural glb must coincide
     with the direct tree glb *)
  let t1 =
    Certdb_xml.Tree.node "r" [ Certdb_xml.Tree.leaf "a" ~data:[ c 1 ] ]
  in
  let t2 =
    Certdb_xml.Tree.node "r"
      [ Certdb_xml.Tree.leaf "a" ~data:[ c 2 ]; Certdb_xml.Tree.leaf "b" ]
  in
  match Certdb_xml.Tree_glb.glb t1 t2 with
  | None -> Alcotest.fail "tree glb exists"
  | Some g ->
    let via_gdm_t = Certdb_xml.Tree.to_gdb g in
    (* it must be equivalent to both operands' gdm glb restricted to trees;
       here we simply check the tree glb is a lower bound and dominates a
       sample lower bound, through gdm homs *)
    check "glb leq t1" true
      (Gordering.leq via_gdm_t (Certdb_xml.Tree.to_gdb t1));
    check "glb leq t2" true
      (Gordering.leq via_gdm_t (Certdb_xml.Tree.to_gdb t2))

(* Theorem 6: Codd membership via bounded-treewidth DP. *)
let mk_tree_gdb ~seed ~nodes ~null_prob ~domain =
  Ggen.tree ~seed ~nodes ~labels:[ "a"; "b" ] ~null_prob ~domain ()

let test_codd_membership_agrees () =
  for seed = 0 to 25 do
    let d = mk_tree_gdb ~seed ~nodes:5 ~null_prob:0.5 ~domain:2 in
    let d' = Gdb.ground (mk_tree_gdb ~seed:(seed + 900) ~nodes:6 ~null_prob:0.0 ~domain:2) in
    check (Printf.sprintf "seed %d: d is Codd" seed) true (Gdb.codd d);
    check
      (Printf.sprintf "seed %d: codd_leq = generic_leq" seed)
      (Membership.generic_leq d d')
      (Membership.codd_leq d d')
  done

let test_codd_membership_witness () =
  let d = mk_tree_gdb ~seed:3 ~nodes:4 ~null_prob:0.5 ~domain:2 in
  let d' = Gdb.ground d in
  match Membership.codd_leq_witness d d' with
  | None -> Alcotest.fail "grounding is a completion"
  | Some h -> check "witness valid" true (Ghom.is_hom h d d')

let test_codd_rejects_naive () =
  Alcotest.check_raises "non-Codd rejected"
    (Invalid_argument "Membership.codd_leq: source is not Codd") (fun () ->
      ignore (Membership.codd_leq paper_gdb paper_gdb))

(* FO(S,∼) and Theorem 7. *)
let test_logic_eval () =
  let f = Logic.Exists ([ "x"; "y" ], Logic.EqAttr (2, "x", 1, "y")) in
  (* R(1,⊥1), S(⊥1,⊥2,2): attr 2 of R-node = attr 1 of S-node = ⊥1 *)
  check "eqattr on nulls" true (Logic.holds paper_gdb f);
  let g = Logic.Exists ([ "x" ], Logic.Label ("R", "x")) in
  check "label" true (Logic.holds paper_gdb g);
  let h = Logic.Exists ([ "x" ], Logic.Label ("T", "x")) in
  check "missing label" false (Logic.holds paper_gdb h)

let test_theorem7a_naive_eval () =
  (* existential positive: certain = naive evaluation; check against image
     enumeration *)
  for seed = 0 to 8 do
    let d = mk_tree_gdb ~seed:(seed + 40) ~nodes:4 ~null_prob:0.5 ~domain:2 in
    let f =
      Logic.Exists
        ( [ "x"; "y" ],
          Logic.And (Logic.Rel ("child", [ "x"; "y" ]), Logic.EqAttr (1, "x", 1, "y")) )
    in
    check
      (Printf.sprintf "seed %d: naive = certain (ep)" seed)
      (Query_answering.certain_existential d f)
      (Query_answering.naive_holds d f)
  done

let test_theorem7b_existential () =
  (* ∃ with negation: naive evaluation is not sound, image enumeration is *)
  let d = Gdb.make ~nodes:[ (0, "a", [ n1 ]); (1, "a", [ n2 ]) ] ~tuples:[] in
  let f =
    Logic.Exists
      ( [ "x"; "y" ],
        Logic.And
          ( Logic.And (Logic.Label ("a", "x"), Logic.Label ("a", "y")),
            Logic.Not (Logic.EqAttr (1, "x", 1, "y")) ) )
  in
  check "naively true" true (Query_answering.naive_holds d f);
  (* the completion with ⊥1 = ⊥2 and merged nodes refutes it *)
  check "not certain" false (Query_answering.certain d f)

let test_certain_dispatch () =
  let f_ep = Logic.Exists ([ "x" ], Logic.Label ("a", "x")) in
  let d = Gdb.make ~nodes:[ (0, "a", [ c 1 ]) ] ~tuples:[] in
  check "dispatch ep" true (Query_answering.certain d f_ep);
  let f_univ = Logic.Forall ([ "x" ], Logic.Label ("a", "x")) in
  Alcotest.check_raises "unsupported raises"
    (Invalid_argument
       "Query_answering.certain: sentence outside the decidable fragments \
        (supply ~on_unsupported)") (fun () ->
      ignore (Query_answering.certain d f_univ))

let test_complete_images () =
  let d = Gdb.make ~nodes:[ (0, "a", [ n1 ]) ] ~tuples:[] in
  let images = Query_answering.complete_images d in
  check "some images" true (List.length images >= 2);
  List.iter (fun i -> check "image complete" true (Gdb.is_complete i)) images

let () =
  Alcotest.run "gdm"
    [
      ( "gdb",
        [
          Alcotest.test_case "basics" `Quick test_gdb_basics;
          Alcotest.test_case "conforms" `Quick test_conforms;
        ] );
      ( "hom",
        [
          Alcotest.test_case "data coupling" `Quick test_hom_data_coupling;
          Alcotest.test_case "structure" `Quick test_hom_structure_preserved;
          Alcotest.test_case "prop9 via coding" `Quick test_ordering_prop9;
        ] );
      ( "glb",
        [
          Alcotest.test_case "sigma = relational" `Quick
            test_glb_sigma_relational_matches_prop5;
          Alcotest.test_case "sigma is glb" `Quick test_glb_sigma_is_glb;
          Alcotest.test_case "trees" `Quick test_glb_in_class_trees;
        ] );
      ( "membership",
        [
          Alcotest.test_case "codd agrees" `Quick test_codd_membership_agrees;
          Alcotest.test_case "witness" `Quick test_codd_membership_witness;
          Alcotest.test_case "naive rejected" `Quick test_codd_rejects_naive;
        ] );
      ( "logic",
        [
          Alcotest.test_case "eval" `Quick test_logic_eval;
          Alcotest.test_case "theorem7a" `Quick test_theorem7a_naive_eval;
          Alcotest.test_case "theorem7b" `Quick test_theorem7b_existential;
          Alcotest.test_case "dispatch" `Quick test_certain_dispatch;
          Alcotest.test_case "images" `Quick test_complete_images;
        ] );
    ]
