(* Tests for FO/CQ/UCQ evaluation, naïve evaluation and certain answers:
   the Imieliński–Lipski theorem, Prop. 1's boundary and Prop. 2. *)

open Certdb_values
open Certdb_relational
open Certdb_query

let check = Alcotest.(check bool)
let n1 = Value.null 8001
let n2 = Value.null 8002
let c i = Value.int i
let v = Fo.var
let k i = Fo.const (c i)

let test_fo_eval () =
  let d = Instance.of_list [ ("R", [ [ c 1; c 2 ]; [ c 2; c 3 ] ]) ] in
  check "atom holds" true (Fo.holds d (Fo.atom "R" [ k 1; k 2 ]));
  check "atom fails" false (Fo.holds d (Fo.atom "R" [ k 2; k 1 ]));
  check "exists" true
    (Fo.holds d (Fo.Exists ([ "x" ], Fo.atom "R" [ v "x"; k 3 ])));
  check "forall fails" false
    (Fo.holds d (Fo.Forall ([ "x" ], Fo.atom "R" [ v "x"; k 2 ])));
  check "implication" true
    (Fo.holds d
       (Fo.Forall
          ( [ "x"; "y" ],
            Fo.Implies (Fo.atom "R" [ v "x"; v "y" ], Fo.Not (Fo.Eq (v "x", v "y"))) )))

let test_fo_nulls_as_values () =
  let d = Instance.of_list [ ("R", [ [ n1; n1 ]; [ n1; n2 ] ]) ] in
  (* naive semantics: ⊥1 = ⊥1 but ⊥1 ≠ ⊥2 *)
  check "self equality" true
    (Fo.holds d (Fo.Exists ([ "x" ], Fo.atom "R" [ v "x"; v "x" ])));
  check "distinct nulls differ" true
    (Fo.holds d
       (Fo.Exists
          ( [ "x"; "y" ],
            Fo.And (Fo.atom "R" [ v "x"; v "y" ], Fo.Not (Fo.Eq (v "x", v "y"))) )))

let test_fo_answers () =
  let d = Instance.of_list [ ("R", [ [ c 1; c 2 ]; [ c 2; c 3 ] ]) ] in
  let ans = Fo.answers ~head:[ "x" ] d (Fo.Exists ([ "y" ], Fo.atom "R" [ v "x"; v "y" ])) in
  Alcotest.(check int) "two sources" 2 (Instance.cardinal ans)

let test_cq_eval () =
  let d = Instance.of_list [ ("R", [ [ c 1; c 2 ]; [ c 2; c 3 ] ]) ] in
  let q = Cq.make ~head:[ "x"; "z" ]
      [ ("R", [ v "x"; v "y" ]); ("R", [ v "y"; v "z" ]) ]
  in
  let ans = Cq.answers q d in
  Alcotest.(check int) "one path" 1 (Instance.cardinal ans);
  check "path 1-3" true
    (Instance.mem ans (Instance.fact "ans" [ c 1; c 3 ]))

let test_cq_fo_agree () =
  for seed = 0 to 10 do
    let d =
      Codd.random_naive ~seed ~schema:[ ("R", 2) ] ~facts:4 ~null_prob:0.3
        ~domain:3 ~null_pool:2 ()
    in
    let q =
      Cq.make ~head:[ "x" ] [ ("R", [ v "x"; v "y" ]); ("R", [ v "y"; v "x" ]) ]
    in
    let via_cq = Cq.answers q d in
    let via_fo = Fo.answers ~head:[ "x" ] d (Cq.to_fo q) in
    check (Printf.sprintf "seed %d: CQ = FO" seed) true
      (Instance.equal via_cq via_fo)
  done

let test_cq_tableau_roundtrip () =
  let d = Instance.of_list [ ("R", [ [ c 1; n1 ]; [ n1; n2 ] ]) ] in
  let q = Cq.of_instance d in
  let tableau, _ = Cq.freeze q in
  check "tableau equivalent to instance" true (Ordering.equiv tableau d)

let test_containment () =
  (* path-2 query contained in path-1 query *)
  let q2 = Cq.make ~head:[ "x" ] [ ("R", [ v "x"; v "y" ]); ("R", [ v "y"; v "z" ]) ] in
  let q1 = Cq.make ~head:[ "x" ] [ ("R", [ v "x"; v "y" ]) ] in
  check "Q2 ⊆ Q1" true (Cq.contained q2 q1);
  check "Q1 ⊄ Q2" false (Cq.contained q1 q2);
  (* boolean triangle vs edge *)
  let tri =
    Cq.boolean [ ("R", [ v "x"; v "y" ]); ("R", [ v "y"; v "z" ]); ("R", [ v "z"; v "x" ]) ]
  in
  let edge = Cq.boolean [ ("R", [ v "x"; v "y" ]) ] in
  check "triangle ⊆ edge" true (Cq.contained tri edge);
  check "edge ⊄ triangle" false (Cq.contained edge tri)

(* Imieliński–Lipski: naïve evaluation computes certain answers for UCQs. *)
let test_naive_ucq_certain () =
  for seed = 0 to 12 do
    let d =
      Codd.random_naive ~seed ~schema:[ ("R", 2) ] ~facts:3 ~null_prob:0.4
        ~domain:2 ~null_pool:2 ()
    in
    let q = Cq.make ~head:[ "x" ] [ ("R", [ v "x"; v "y" ]) ] in
    let u = Ucq.make [ q ] in
    let naive = Certain.naive_eval_ucq u d in
    let reference =
      Semantics.certain_answers_by_enumeration
        (fun r -> Ucq.answers u r)
        d
    in
    check
      (Printf.sprintf "seed %d: naive = certain" seed)
      true
      (Instance.equal naive reference)
  done

let test_naive_ucq_join () =
  for seed = 0 to 12 do
    let d =
      Codd.random_naive ~seed:(seed + 77) ~schema:[ ("R", 2) ] ~facts:3
        ~null_prob:0.4 ~domain:2 ~null_pool:2 ()
    in
    let q =
      Cq.make ~head:[ "x"; "z" ]
        [ ("R", [ v "x"; v "y" ]); ("R", [ v "y"; v "z" ]) ]
    in
    let u = Ucq.make [ q ] in
    check
      (Printf.sprintf "seed %d: join naive = certain" seed)
      true
      (Instance.equal
         (Certain.naive_eval_ucq u d)
         (Semantics.certain_answers_by_enumeration (fun r -> Ucq.answers u r) d))
  done

(* Prop. 1 boundary: a non-UCQ query where naive evaluation overclaims. *)
let test_prop1_boundary () =
  let d = Instance.of_list [ ("R", [ [ n1 ] ]) ] in
  (* Q = ∃x R(x) ∧ ¬S(x): naively true, but the world R(a), S(a) refutes *)
  let q =
    Fo.Exists ([ "x" ], Fo.And (Fo.atom "R" [ v "x" ], Fo.Not (Fo.atom "S" [ v "x" ])))
  in
  check "naive says true" true (Certain.naive_holds q d);
  let refuting =
    Instance.of_list [ ("R", [ [ c 1 ] ]); ("S", [ [ c 1 ] ]) ]
  in
  check "refuting world in [[d]]" true (Semantics.mem refuting d);
  check "certain is false" false
    (Certain.certain_holds_fo ~worlds:[ refuting ] q d)

let test_prop1_inequality_query () =
  (* Q = ∃x,y R(x) ∧ R(y) ∧ x≠y on D = {R(⊥1), R(⊥2)}: naively true, but
     the completion mapping both nulls to the same constant refutes it. *)
  let d = Instance.of_list [ ("R", [ [ n1 ]; [ n2 ] ]) ] in
  let q =
    Fo.Exists
      ( [ "x"; "y" ],
        Fo.conj
          [ Fo.atom "R" [ v "x" ]; Fo.atom "R" [ v "y" ];
            Fo.Not (Fo.Eq (v "x", v "y")) ] )
  in
  check "naive true" true (Certain.naive_holds q d);
  check "not certain" false (Certain.certain_holds_fo q d)

(* Prop. 2: the three characterizations agree for Boolean CQs. *)
let test_prop2 () =
  for seed = 0 to 15 do
    let d =
      Codd.random_naive ~seed:(seed + 200) ~schema:[ ("R", 2) ] ~facts:3
        ~null_prob:0.3 ~domain:2 ~null_pool:2 ()
    in
    let q = Cq.boolean [ ("R", [ v "x"; v "x" ]) ] in
    let a = Certain.certain_cq_via_hom q d in
    let b = Certain.certain_cq_via_containment q d in
    let c' = Certain.certain_cq_via_naive q d in
    check (Printf.sprintf "seed %d: hom = containment" seed) a b;
    check (Printf.sprintf "seed %d: hom = naive" seed) a c'
  done

let test_prop2_certainty_matches_enumeration () =
  for seed = 0 to 10 do
    let d =
      Codd.random_naive ~seed:(seed + 300) ~schema:[ ("R", 2) ] ~facts:3
        ~null_prob:0.4 ~domain:2 ~null_pool:2 ()
    in
    let q = Cq.boolean [ ("R", [ v "x"; v "y" ]); ("R", [ v "y"; v "x" ]) ] in
    check
      (Printf.sprintf "seed %d: prop2 = enumeration" seed)
      (List.for_all
         (fun (_, r) -> Cq.holds q r)
         (Semantics.sample_completions d))
      (Certain.certain_cq_via_hom q d)
  done

(* CWA certainty and possibility *)
let test_cwa_certain_vs_owa () =
  (* non-monotone query: certain under CWA, refutable under OWA *)
  let d = Instance.of_list [ ("R", [ [ n1 ] ]) ] in
  let q =
    Fo.Exists ([ "x" ], Fo.And (Fo.atom "R" [ v "x" ], Fo.Not (Fo.atom "S" [ v "x" ])))
  in
  check "certain under CWA" true (Certain.certain_holds_cwa q d);
  let superset = Instance.of_list [ ("R", [ [ c 1 ] ]); ("S", [ [ c 1 ] ]) ] in
  check "refuted under OWA" false
    (Certain.certain_holds_fo ~worlds:[ superset ] q d)

let test_possible () =
  let d = Instance.of_list [ ("R", [ [ n1 ]; [ c 5 ] ]) ] in
  (* possible that the two facts coincide *)
  let q =
    Fo.Exists
      ( [ "x" ],
        Fo.And (Fo.atom "R" [ v "x" ], Fo.Eq (v "x", k 5)) )
  in
  check "5 possible (indeed certain)" true (Certain.possible_holds_cwa q d);
  let contradiction = Fo.And (Fo.atom "R" [ k 9 ], Fo.Not (Fo.atom "R" [ k 9 ])) in
  check "contradiction impossible" false
    (Certain.possible_holds_cwa contradiction d);
  (* possible answers of a UCQ: the null can be anything sampled *)
  let u = Ucq.make [ Cq.make ~head:[ "x" ] [ ("R", [ v "x" ]) ] ] in
  let poss = Certain.possible_ucq u d in
  check "5 among possible" true (Instance.mem poss (Instance.fact "ans" [ c 5 ]));
  check "possible superset of certain" true
    (Instance.fold
       (fun f ok -> ok && Instance.mem poss f)
       (Certain.naive_eval_ucq u d) true)

let test_classifiers () =
  let ep = Fo.Exists ([ "x" ], Fo.atom "R" [ v "x" ]) in
  check "exist-positive" true (Fo.is_existential_positive ep);
  check "existential" true (Fo.is_existential ep);
  let neg = Fo.Exists ([ "x" ], Fo.Not (Fo.atom "R" [ v "x" ])) in
  check "negation not positive" false (Fo.is_existential_positive neg);
  check "negation still existential" true (Fo.is_existential neg);
  let univ = Fo.Forall ([ "x" ], Fo.atom "R" [ v "x" ]) in
  check "universal not existential" false (Fo.is_existential univ)

let test_free_vars () =
  let f = Fo.Exists ([ "y" ], Fo.And (Fo.atom "R" [ v "x"; v "y" ], Fo.Eq (v "z", k 1))) in
  Alcotest.(check (list string)) "free vars" [ "x"; "z" ]
    (List.sort compare (Fo.free_vars f))

let () =
  Alcotest.run "query"
    [
      ( "fo",
        [
          Alcotest.test_case "eval" `Quick test_fo_eval;
          Alcotest.test_case "nulls as values" `Quick test_fo_nulls_as_values;
          Alcotest.test_case "answers" `Quick test_fo_answers;
          Alcotest.test_case "classifiers" `Quick test_classifiers;
          Alcotest.test_case "free vars" `Quick test_free_vars;
        ] );
      ( "cq",
        [
          Alcotest.test_case "eval" `Quick test_cq_eval;
          Alcotest.test_case "cq = fo" `Quick test_cq_fo_agree;
          Alcotest.test_case "tableau roundtrip" `Quick test_cq_tableau_roundtrip;
          Alcotest.test_case "containment" `Quick test_containment;
        ] );
      ( "certain",
        [
          Alcotest.test_case "naive ucq = certain" `Quick test_naive_ucq_certain;
          Alcotest.test_case "naive join = certain" `Quick test_naive_ucq_join;
          Alcotest.test_case "prop1 boundary" `Quick test_prop1_boundary;
          Alcotest.test_case "prop1 inequality" `Quick test_prop1_inequality_query;
          Alcotest.test_case "prop2 equivalences" `Quick test_prop2;
          Alcotest.test_case "prop2 = enumeration" `Quick
            test_prop2_certainty_matches_enumeration;
          Alcotest.test_case "cwa vs owa certainty" `Quick test_cwa_certain_vs_owa;
          Alcotest.test_case "possibility" `Quick test_possible;
        ] );
    ]
