(* Tests for tree axes as structural vocabularies, CWA on generalized
   databases, and the powerdomain functors. *)

open Certdb_values
open Certdb_xml
open Certdb_gdm

let check = Alcotest.(check bool)

(* axes *)
let t_bc = Tree.node "a" [ Tree.leaf "b"; Tree.leaf "c" ]
let t_cb = Tree.node "a" [ Tree.leaf "c"; Tree.leaf "b" ]

let test_axes_child_only () =
  (* with child only, the two sibling orders are equivalent *)
  check "bc <= cb" true (Axes.leq ~axes:[ `Child ] t_bc t_cb);
  check "cb <= bc" true (Axes.leq ~axes:[ `Child ] t_cb t_bc)

let test_axes_sibling_order () =
  (* with sibling order in the vocabulary the swap is blocked *)
  check "bc <= cb blocked" false
    (Axes.leq ~axes:[ `Child; `Sibling_order ] t_bc t_cb);
  check "bc <= bc" true (Axes.leq ~axes:[ `Child; `Sibling_order ] t_bc t_bc)

let test_axes_agree_with_ordered_tree () =
  for seed = 0 to 14 do
    let mk s =
      let t =
        Tree.random ~seed:s
          ~labels:[ ("r", 0); ("a", 0); ("b", 0) ]
          ~max_depth:3 ~max_children:2 ~null_prob:0.0 ~domain:2 ()
      in
      { t with Tree.label = "r" }
    in
    let t1 = mk seed and t2 = mk (seed + 500) in
    check
      (Printf.sprintf "seed %d: gdm sibling-order = ordered-tree hom" seed)
      (Ordered_tree.leq t1 t2)
      (Axes.leq ~axes:[ `Child; `Sibling_order ] t1 t2)
  done

let test_axes_descendant () =
  let deep = Tree.node "a" [ Tree.node "x" [ Tree.leaf "b" ] ] in
  let pat = Tree.node "a" [ Tree.leaf "b" ] in
  (* with child only: no hom (b is not a child of a in deep) *)
  check "child blocks" false (Axes.leq ~axes:[ `Child ] pat deep);
  (* a descendant-only vocabulary admits it *)
  check "descendant admits" true (Axes.leq ~axes:[ `Descendant ] pat deep)

let test_axes_next_sibling () =
  let abc = Tree.node "r" [ Tree.leaf "a"; Tree.leaf "b"; Tree.leaf "c" ] in
  let ac = Tree.node "r" [ Tree.leaf "a"; Tree.leaf "c" ] in
  (* a before c non-adjacently: sibling_order admits, next_sibling blocks *)
  check "order admits gap" true
    (Axes.leq ~axes:[ `Child; `Sibling_order ] ac abc = false
     ||
     (* ac requires a immediately-before... with sibling_order only the
        strict order is required, which abc satisfies *)
     Axes.leq ~axes:[ `Child; `Sibling_order ] ac abc);
  check "next_sibling blocks gap" false
    (Axes.leq ~axes:[ `Child; `Next_sibling ] ac abc)

let test_axes_schema () =
  let s = Axes.schema ~axes:[ `Child; `Next_sibling ] ~alphabet:[ ("a", 0) ] in
  check "rels declared" true
    (Gschema.rel_arity s "child" = Some 2
     && Gschema.rel_arity s "next_sibling" = Some 2)

(* gdm CWA *)
let test_gcwa_relational_agreement () =
  let open Certdb_relational in
  for seed = 0 to 14 do
    let mk s =
      Codd.random_naive ~seed:s ~schema:[ ("R", 1) ] ~facts:3 ~null_prob:0.5
        ~domain:2 ~null_pool:2 ()
    in
    let d = mk seed and d' = mk (seed + 300) in
    check
      (Printf.sprintf "seed %d: gdm cwa = relational cwa" seed)
      (Ordering.cwa_leq d d')
      (Gcwa.leq (Encode.of_instance d) (Encode.of_instance d'))
  done

let test_gcwa_basic () =
  let c i = Value.int i in
  let n = Value.fresh_null () in
  let d = Gdb.make ~nodes:[ (0, "a", [ n ]) ] ~tuples:[] in
  let small = Gdb.make ~nodes:[ (0, "a", [ c 1 ]) ] ~tuples:[] in
  let big =
    Gdb.make ~nodes:[ (0, "a", [ c 1 ]); (1, "a", [ c 2 ]) ] ~tuples:[]
  in
  check "onto singleton" true (Gcwa.leq d small);
  check "cannot cover two nodes" false (Gcwa.leq d big);
  check "owa still fine" true (Gordering.leq d big)

(* powerdomains *)
module Int_div = struct
  type t = int

  let leq x y = y mod x = 0
end

module PD = Certdb_order.Powerdomain.Make (Int_div)

let test_powerdomain () =
  check "hoare" true (PD.hoare [ 2; 3 ] [ 4; 9 ]);
  check "hoare fails" false (PD.hoare [ 5 ] [ 4; 9 ]);
  check "smyth" true (PD.smyth [ 2; 3 ] [ 4; 9 ]);
  check "smyth fails" false (PD.smyth [ 2 ] [ 4; 9 ]);
  check "plotkin" true (PD.plotkin [ 2; 3 ] [ 4; 9 ]);
  check "empty hoare" true (PD.hoare [] [ 1 ]);
  check "empty smyth" true (PD.smyth [ 1 ] [])

let test_powerdomain_matches_relational_hoare () =
  (* the relational ⪯ is the Hoare lift of tuple dominance *)
  let open Certdb_relational in
  let module Tup = struct
    type t = Instance.fact

    let leq (f : Instance.fact) (g : Instance.fact) =
      String.equal f.rel g.rel && Ordering.tuple_leq f.args g.args
  end in
  let module PDT = Certdb_order.Powerdomain.Make (Tup) in
  for seed = 0 to 14 do
    let mk s =
      Codd.random_naive ~seed:s ~schema:[ ("R", 2) ] ~facts:3 ~null_prob:0.4
        ~domain:2 ~null_pool:2 ()
    in
    let d = mk seed and d' = mk (seed + 900) in
    check
      (Printf.sprintf "seed %d: hoare lift = ⪯" seed)
      (Ordering.hoare_leq d d')
      (PDT.hoare (Instance.facts d) (Instance.facts d'))
  done

let () =
  Alcotest.run "axes-cwa-powerdomain"
    [
      ( "axes",
        [
          Alcotest.test_case "child only" `Quick test_axes_child_only;
          Alcotest.test_case "sibling order" `Quick test_axes_sibling_order;
          Alcotest.test_case "ordered-tree agreement" `Quick
            test_axes_agree_with_ordered_tree;
          Alcotest.test_case "descendant" `Quick test_axes_descendant;
          Alcotest.test_case "next sibling" `Quick test_axes_next_sibling;
          Alcotest.test_case "schema" `Quick test_axes_schema;
        ] );
      ( "gcwa",
        [
          Alcotest.test_case "relational agreement" `Quick
            test_gcwa_relational_agreement;
          Alcotest.test_case "basics" `Quick test_gcwa_basic;
        ] );
      ( "powerdomain",
        [
          Alcotest.test_case "lifts" `Quick test_powerdomain;
          Alcotest.test_case "hoare = ⪯" `Quick
            test_powerdomain_matches_relational_hoare;
        ] );
    ]
