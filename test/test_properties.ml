(* Property-based tests (qcheck) for the core invariants of the library:
   preorder laws, glb/lub universal properties, core and retraction laws,
   semantics monotonicity — each on randomly generated instances, trees and
   graphs driven by integer seeds (cheap shrinking, reproducible). *)

open Certdb_values
open Certdb_relational

let count = 60

(* generators: seeds mapped through the library's random builders *)
let seed_arb = QCheck.int_range 0 10_000

let naive_of_seed ?(facts = 3) ?(null_prob = 0.4) seed =
  Codd.random_naive ~seed ~schema:[ ("R", 2); ("S", 1) ] ~facts ~null_prob
    ~domain:2 ~null_pool:2 ()

let codd_of_seed seed =
  Codd.random ~seed ~schema:[ ("R", 2) ] ~facts:3 ~null_prob:0.4 ~domain:3 ()

let tree_of_seed seed =
  let t =
    Certdb_xml.Tree.random ~seed
      ~labels:[ ("r", 0); ("a", 1); ("b", 1) ]
      ~max_depth:3 ~max_children:2 ~null_prob:0.3 ~domain:2 ()
  in
  { t with Certdb_xml.Tree.label = "r"; data = [||] }

let graph_of_seed seed =
  Certdb_graph.Digraph.random ~seed ~vertices:4 ~edge_prob:0.4 ()

let mk name arb prop = QCheck.Test.make ~count ~name arb prop

(* --- relational preorder laws --- *)

let prop_leq_reflexive =
  mk "leq reflexive" seed_arb (fun s -> Ordering.leq (naive_of_seed s) (naive_of_seed s))

let prop_leq_transitive =
  mk "leq transitive"
    QCheck.(triple seed_arb seed_arb seed_arb)
    (fun (a, b, c) ->
      let da = naive_of_seed a
      and db = naive_of_seed b
      and dc = naive_of_seed c in
      (not (Ordering.leq da db && Ordering.leq db dc)) || Ordering.leq da dc)

let prop_cwa_implies_owa =
  mk "cwa implies owa"
    QCheck.(pair seed_arb seed_arb)
    (fun (a, b) ->
      let da = naive_of_seed a and db = naive_of_seed b in
      (not (Ordering.cwa_leq da db)) || Ordering.leq da db)

let prop_leq_implies_hoare =
  mk "leq implies hoare"
    QCheck.(pair seed_arb seed_arb)
    (fun (a, b) ->
      let da = naive_of_seed a and db = naive_of_seed b in
      (not (Ordering.leq da db)) || Ordering.hoare_leq da db)

let prop_codd_hoare_equals_leq =
  mk "on codd tables hoare = leq"
    QCheck.(pair seed_arb seed_arb)
    (fun (a, b) ->
      let da = codd_of_seed a and db = codd_of_seed b in
      Ordering.hoare_leq da db = Ordering.leq da db)

(* --- semantics --- *)

let prop_valuation_image_above =
  mk "d leq h(d) for any valuation" seed_arb (fun s ->
      let d = naive_of_seed s in
      let h =
        Valuation.grounding_of_nulls ~avoid:(Instance.constants d)
          (Instance.nulls d)
      in
      Ordering.leq d (Instance.apply h d))

let prop_ground_in_semantics =
  mk "ground d in [[d]]" seed_arb (fun s ->
      let d = naive_of_seed s in
      Semantics.mem (Instance.ground d) d)

let prop_pi_cpl_below =
  mk "pi_cpl d leq d" seed_arb (fun s ->
      let d = naive_of_seed s in
      Ordering.leq (Instance.pi_cpl d) d)

let prop_pi_cpl_idempotent =
  mk "pi_cpl idempotent" seed_arb (fun s ->
      let d = naive_of_seed s in
      Instance.equal (Instance.pi_cpl (Instance.pi_cpl d)) (Instance.pi_cpl d))

let prop_rename_apart_equiv =
  mk "rename_apart preserves ~" seed_arb (fun s ->
      let d = naive_of_seed s in
      let d', _ = Instance.rename_apart ~avoid:(Instance.nulls d) d in
      Ordering.equiv d d')

(* --- glb / lub --- *)

let prop_glb_lower_bound =
  mk "glb is a lower bound"
    QCheck.(pair seed_arb seed_arb)
    (fun (a, b) ->
      let da = naive_of_seed a and db = naive_of_seed b in
      let g = Glb.glb da db in
      Ordering.leq g da && Ordering.leq g db)

let prop_glb_greatest =
  mk "lower bounds factor through the glb"
    QCheck.(triple seed_arb seed_arb seed_arb)
    (fun (a, b, c) ->
      let da = naive_of_seed a
      and db = naive_of_seed b
      and dc = naive_of_seed c in
      (not (Ordering.leq dc da && Ordering.leq dc db))
      || Ordering.leq dc (Glb.glb da db))

let prop_lub_upper_bound =
  mk "lub is an upper bound"
    QCheck.(pair seed_arb seed_arb)
    (fun (a, b) ->
      let da = naive_of_seed a and db = naive_of_seed b in
      let u = Lub.pair da db in
      Ordering.leq da u && Ordering.leq db u)

let prop_lub_least =
  mk "upper bounds dominate the lub"
    QCheck.(triple seed_arb seed_arb seed_arb)
    (fun (a, b, c) ->
      let da = naive_of_seed a
      and db = naive_of_seed b
      and dc = naive_of_seed c in
      (not (Ordering.leq da dc && Ordering.leq db dc))
      || Ordering.leq (Lub.pair da db) dc)

let prop_glb_commutes =
  mk "glb commutative up to ~"
    QCheck.(pair seed_arb seed_arb)
    (fun (a, b) ->
      let da = naive_of_seed a and db = naive_of_seed b in
      Ordering.equiv (Glb.glb da db) (Glb.glb db da))

let prop_glb_associative =
  mk "glb associative up to ~"
    QCheck.(triple seed_arb seed_arb seed_arb)
    (fun (a, b, c) ->
      let da = naive_of_seed a
      and db = naive_of_seed b
      and dc = naive_of_seed c in
      Ordering.equiv
        (Glb.glb (Glb.glb da db) dc)
        (Glb.glb da (Glb.glb db dc)))

let prop_glb_idempotent =
  mk "glb idempotent up to ~" seed_arb (fun s ->
      let d = naive_of_seed s in
      Ordering.equiv (Glb.glb d d) d)

let prop_lub_idempotent =
  mk "lub idempotent up to ~" seed_arb (fun s ->
      let d = naive_of_seed s in
      Ordering.equiv (Lub.pair d d) d)

(* --- cores --- *)

let prop_core_equiv =
  mk "core ~ original" seed_arb (fun s ->
      let d = naive_of_seed s in
      Ordering.equiv (Core_instance.core d) d)

let prop_core_idempotent =
  mk "core idempotent" seed_arb (fun s ->
      let d = naive_of_seed s in
      let c1 = Core_instance.core d in
      Instance.cardinal (Core_instance.core c1) = Instance.cardinal c1)

let prop_core_no_smaller_equivalent =
  mk "core is minimal among sampled equivalents"
    QCheck.(pair seed_arb seed_arb)
    (fun (a, b) ->
      let da = naive_of_seed a and db = naive_of_seed b in
      (not (Ordering.equiv da db))
      || Instance.cardinal (Core_instance.core da)
         = Instance.cardinal (Core_instance.core db))

(* --- graphs --- *)

let prop_graph_product_universal =
  mk "graph product universal property"
    QCheck.(triple seed_arb seed_arb seed_arb)
    (fun (a, b, c) ->
      let open Certdb_graph in
      let ga = graph_of_seed a
      and gb = graph_of_seed b
      and gc = graph_of_seed c in
      Graph_hom.leq gc (Digraph.product ga gb)
      = (Graph_hom.leq gc ga && Graph_hom.leq gc gb))

let prop_graph_core_equiv =
  mk "graph core ~ original" seed_arb (fun s ->
      let open Certdb_graph in
      let g = graph_of_seed s in
      Graph_hom.equiv g (Graph_core.core g))

let prop_chromatic_monotone =
  mk "chromatic number monotone along hom order"
    QCheck.(pair seed_arb seed_arb)
    (fun (a, b) ->
      let open Certdb_graph in
      let ga = graph_of_seed a and gb = graph_of_seed b in
      Graph_props.monotone_antimonotone_witness ga gb)

(* --- trees --- *)

let prop_tree_leq_reflexive =
  mk "tree leq reflexive" seed_arb (fun s ->
      let t = tree_of_seed s in
      Certdb_xml.Tree_hom.leq t t)

let prop_tree_glb_lower_bound =
  mk "tree glb lower bound"
    QCheck.(pair seed_arb seed_arb)
    (fun (a, b) ->
      let t1 = tree_of_seed a and t2 = tree_of_seed b in
      match Certdb_xml.Tree_glb.glb t1 t2 with
      | None -> false (* same root label: must exist *)
      | Some g ->
        Certdb_xml.Tree_hom.leq g t1 && Certdb_xml.Tree_hom.leq g t2)

let prop_tree_ground_member =
  mk "tree grounding is a completion" seed_arb (fun s ->
      let t = tree_of_seed s in
      Certdb_xml.Tree_hom.mem (Certdb_xml.Tree.ground t) t)

(* --- gdm --- *)

let prop_gdm_coding_preserves_order =
  mk "gdm coding preserves leq"
    QCheck.(pair seed_arb seed_arb)
    (fun (a, b) ->
      let da = naive_of_seed a and db = naive_of_seed b in
      Ordering.leq da db
      = Certdb_gdm.Gordering.leq
          (Certdb_gdm.Encode.of_instance da)
          (Certdb_gdm.Encode.of_instance db))

let prop_gdm_glb_lower_bound =
  mk "gdm glb lower bound"
    QCheck.(pair seed_arb seed_arb)
    (fun (a, b) ->
      let da = Certdb_gdm.Encode.of_instance (naive_of_seed a) in
      let db = Certdb_gdm.Encode.of_instance (naive_of_seed b) in
      let g = Certdb_gdm.Gglb.glb_sigma da db in
      Certdb_gdm.Gordering.leq g da && Certdb_gdm.Gordering.leq g db)

(* --- c-tables --- *)

let prop_ctable_select_strong =
  mk "ctable selection commutes with grounding" seed_arb (fun s ->
      let d = naive_of_seed ~facts:2 s in
      let t = Ctable.of_instance_relation d "R" in
      if Ctable.arity t < 2 then true
      else
        let selected = Ctable.select_eq_col 0 1 t in
        List.for_all
          (fun h ->
            let lhs = List.sort compare (Ctable.ground h selected) in
            let rhs =
              List.sort compare
                (List.filter
                   (fun tu -> Value.equal tu.(0) tu.(1))
                   (Ctable.ground h t))
            in
            lhs = rhs)
          (Ctable.sample_valuations t))

let prop_ctable_difference_strong =
  mk "ctable difference commutes with grounding"
    QCheck.(pair seed_arb seed_arb)
    (fun (a, b) ->
      let t1 = Ctable.of_instance_relation (naive_of_seed ~facts:2 a) "R" in
      let t2 = Ctable.of_instance_relation (naive_of_seed ~facts:2 b) "R" in
      if Ctable.arity t1 <> Ctable.arity t2 || Ctable.arity t1 = 0 then true
      else
        let diff = Ctable.difference t1 t2 in
        List.for_all
          (fun h ->
            let lhs = List.sort compare (Ctable.ground h diff) in
            let w2 = Ctable.ground h t2 in
            let rhs =
              List.sort compare
                (List.filter
                   (fun tu -> not (List.mem tu w2))
                   (Ctable.ground h t1))
            in
            lhs = rhs)
          (Ctable.sample_valuations (Ctable.union t1 t2)))

(* --- nested relations --- *)

let nested_of_seed seed =
  Certdb_nested.Nested.of_instance_relation (naive_of_seed seed) "R"

let prop_nested_owa_reflexive =
  mk "nested owa reflexive" seed_arb (fun s ->
      let v = nested_of_seed s in
      Certdb_nested.Nested.leq_owa v v)

let prop_nested_cwa_implies_owa =
  mk "nested cwa implies owa"
    QCheck.(pair seed_arb seed_arb)
    (fun (a, b) ->
      let va = nested_of_seed a and vb = nested_of_seed b in
      (not (Certdb_nested.Nested.leq_cwa va vb))
      || Certdb_nested.Nested.leq_owa va vb)

let prop_nested_ground_above =
  mk "nested value below its grounding" seed_arb (fun s ->
      let v = nested_of_seed s in
      Certdb_nested.Nested.leq_owa v (Certdb_nested.Nested.ground v))

let prop_nested_glb_lower_bound =
  mk "nested glb lower bound"
    QCheck.(pair seed_arb seed_arb)
    (fun (a, b) ->
      let va = nested_of_seed a and vb = nested_of_seed b in
      match Certdb_nested.Nested.glb va vb with
      | None -> false
      | Some g ->
        Certdb_nested.Nested.leq_owa g va
        && Certdb_nested.Nested.leq_owa g vb)

(* --- incomplete documents --- *)

let doc_alphabet = [ ("r", 0); ("a", 1); ("b", 1) ]

let doc_of_seed seed =
  let t =
    Certdb_xml.Tree.random ~seed ~labels:doc_alphabet ~max_depth:2
      ~max_children:2 ~null_prob:0.4 ~domain:2 ()
  in
  let base = Certdb_xml.Incomplete_doc.of_tree { t with Certdb_xml.Tree.label = "r"; data = [||] } in
  (* turn the first edge (if any) into a descendant edge *)
  match base.Certdb_xml.Incomplete_doc.edges with
  | (_, c) :: rest ->
    { base with
      Certdb_xml.Incomplete_doc.edges =
        (Certdb_xml.Incomplete_doc.Descendant, c) :: rest }
  | [] -> base

let prop_doc_completions_are_members =
  mk "incomplete-doc completions satisfy the description"
    (QCheck.int_range 0 300) (fun seed ->
      let doc = doc_of_seed seed in
      if Value.Set.cardinal (Certdb_xml.Incomplete_doc.nulls doc) > 3 then true
      else
        List.for_all
          (fun t -> Certdb_xml.Incomplete_doc.member doc t)
          (Certdb_xml.Incomplete_doc.sample_completions ~alphabet:doc_alphabet
             ~chain_bound:2 doc))

let all_props =
  [
    prop_leq_reflexive; prop_leq_transitive; prop_cwa_implies_owa;
    prop_leq_implies_hoare; prop_codd_hoare_equals_leq;
    prop_valuation_image_above; prop_ground_in_semantics; prop_pi_cpl_below;
    prop_pi_cpl_idempotent; prop_rename_apart_equiv; prop_glb_lower_bound;
    prop_glb_greatest; prop_lub_upper_bound; prop_lub_least;
    prop_glb_commutes; prop_glb_associative; prop_glb_idempotent;
    prop_lub_idempotent; prop_core_equiv; prop_core_idempotent;
    prop_core_no_smaller_equivalent; prop_graph_product_universal;
    prop_graph_core_equiv; prop_chromatic_monotone; prop_tree_leq_reflexive;
    prop_tree_glb_lower_bound; prop_tree_ground_member;
    prop_gdm_coding_preserves_order; prop_gdm_glb_lower_bound;
    prop_ctable_select_strong; prop_ctable_difference_strong;
    prop_nested_owa_reflexive; prop_nested_cwa_implies_owa;
    prop_nested_ground_above; prop_nested_glb_lower_bound;
    prop_doc_completions_are_members;
  ]

let () =
  Alcotest.run "properties"
    [ ("qcheck", List.map QCheck_alcotest.to_alcotest all_props) ]
