(* Tests for XML tree patterns (child/descendant axes) and XML-to-XML
   queries with their certain answers. *)

open Certdb_values
open Certdb_xml

let check = Alcotest.(check bool)
let c i = Value.int i

let catalog =
  Tree.node "catalog"
    [
      Tree.node "book" ~data:[ c 1 ]
        [ Tree.leaf "author" ~data:[ Value.str "ann" ];
          Tree.node "meta" [ Tree.leaf "year" ~data:[ c 1999 ] ] ];
      Tree.node "book" ~data:[ c 2 ]
        [ Tree.leaf "author" ~data:[ Value.str "bob" ] ];
    ]

let test_child_axis () =
  let p =
    Pattern.node ~label:"book"
      [ (Pattern.Child, Pattern.node ~label:"author" []) ]
  in
  check "book with author" true (Pattern.matches p catalog);
  let p_year =
    Pattern.node ~label:"book"
      [ (Pattern.Child, Pattern.node ~label:"year" []) ]
  in
  check "year is not a direct child" false (Pattern.matches p_year catalog)

let test_descendant_axis () =
  let p =
    Pattern.node ~label:"book"
      [ (Pattern.Descendant, Pattern.node ~label:"year" []) ]
  in
  check "year is a descendant" true (Pattern.matches p catalog);
  let p2 =
    Pattern.node ~label:"catalog"
      [ (Pattern.Descendant, Pattern.node ~label:"year" []) ]
  in
  check "from the root too" true (Pattern.matches ~require_root:true p2 catalog)

let test_wildcard () =
  let p =
    Pattern.node
      [ (Pattern.Child, Pattern.node ~label:"year" []) ]
  in
  (* wildcard node with a year child: the meta node *)
  check "wildcard matches meta" true (Pattern.matches p catalog)

let test_data_variables () =
  let p =
    Pattern.node ~label:"book" ~data:[ Pattern.Var "id" ]
      [ (Pattern.Child,
         Pattern.node ~label:"author" ~data:[ Pattern.Var "who" ] []) ]
  in
  let answers = Pattern.answers p catalog ~out:[ "id"; "who" ] in
  Alcotest.(check int) "two books" 2 (List.length answers);
  check "ann wrote book 1" true
    (List.mem [ c 1; Value.str "ann" ] answers)

let test_repeated_variable () =
  (* same variable twice: equality constraint *)
  let t =
    Tree.node "r"
      [ Tree.leaf "a" ~data:[ c 5 ]; Tree.leaf "b" ~data:[ c 5 ];
        Tree.leaf "b" ~data:[ c 6 ] ]
  in
  let p =
    Pattern.node ~label:"r"
      [ (Pattern.Child, Pattern.node ~label:"a" ~data:[ Pattern.Var "v" ] []);
        (Pattern.Child, Pattern.node ~label:"b" ~data:[ Pattern.Var "v" ] []) ]
  in
  match Pattern.find_match ~require_root:true p t with
  | None -> Alcotest.fail "expected a match"
  | Some env ->
    let module SM = Map.Make (String) in
    check "v = 5" true (Value.equal (SM.find "v" env) (c 5))

let test_constants_in_pattern () =
  let p =
    Pattern.node ~label:"book" ~data:[ Pattern.Val (c 1) ] []
  in
  check "book 1 exists" true (Pattern.matches p catalog);
  let p9 = Pattern.node ~label:"book" ~data:[ Pattern.Val (c 9) ] [] in
  check "book 9 missing" false (Pattern.matches p9 catalog)

let test_nulls_as_values_in_matching () =
  let n = Value.fresh_null () in
  let t = Tree.node "r" [ Tree.leaf "a" ~data:[ n ]; Tree.leaf "b" ~data:[ n ] ] in
  let p =
    Pattern.node ~label:"r"
      [ (Pattern.Child, Pattern.node ~label:"a" ~data:[ Pattern.Var "v" ] []);
        (Pattern.Child, Pattern.node ~label:"b" ~data:[ Pattern.Var "v" ] []) ]
  in
  (* the shared null satisfies v = v naively *)
  check "naive match over nulls" true (Pattern.matches ~require_root:true p t);
  (* but exporting v yields no certain (constant) answers *)
  Alcotest.(check int) "no constant answers" 0
    (List.length (Pattern.answers p t ~out:[ "v" ]))

(* XML-to-XML queries *)
let test_query_apply () =
  let q =
    Xml_query.make
      ~pattern:
        (Pattern.node ~label:"book" ~data:[ Pattern.Var "id" ]
           [ (Pattern.Child,
              Pattern.node ~label:"author" ~data:[ Pattern.Var "who" ] []) ])
      ~template:
        (Xml_query.template "entry" ~data:[ Pattern.Var "who" ]
           [ Xml_query.template "ref" ~data:[ Pattern.Var "id" ] [] ])
  in
  let out = Xml_query.apply q catalog in
  Alcotest.(check int) "two entries" 2 (List.length out.Tree.children);
  Alcotest.(check string) "result root" "result" out.Tree.label

let test_query_certain_agrees () =
  (* incomplete input: certain answer (glb over completions) is equivalent
     to naive application — the Corollary 1 shape *)
  let n = Value.fresh_null () in
  let t =
    Tree.node "catalog"
      [ Tree.node "book" ~data:[ c 1 ]
          [ Tree.leaf "author" ~data:[ n ] ] ]
  in
  let q =
    Xml_query.make
      ~pattern:
        (Pattern.node ~label:"book" ~data:[ Pattern.Var "id" ]
           [ (Pattern.Child,
              Pattern.node ~label:"author" ~data:[ Pattern.Var "who" ] []) ])
      ~template:(Xml_query.template "w" ~data:[ Pattern.Var "who" ] [])
  in
  check "naive ~ certain" true (Xml_query.naive_certain_agrees q t)

let test_query_certain_constant_part () =
  let n = Value.fresh_null () in
  let t =
    Tree.node "catalog"
      [ Tree.node "book" ~data:[ c 1 ] [];
        Tree.node "book" ~data:[ n ] [] ]
  in
  let q =
    Xml_query.make
      ~pattern:(Pattern.node ~label:"book" ~data:[ Pattern.Var "id" ] [])
      ~template:(Xml_query.template "id" ~data:[ Pattern.Var "id" ] [])
  in
  match Xml_query.certain_by_enumeration q t with
  | None -> Alcotest.fail "glb exists"
  | Some certain ->
    (* the certain output contains id(1); the unknown book contributes an
       incomplete child *)
    let has_one =
      List.exists
        (fun (ch : Tree.t) -> ch.Tree.data = [| c 1 |])
        certain.Tree.children
    in
    check "certain keeps id(1)" true has_one

let () =
  Alcotest.run "patterns"
    [
      ( "pattern",
        [
          Alcotest.test_case "child axis" `Quick test_child_axis;
          Alcotest.test_case "descendant axis" `Quick test_descendant_axis;
          Alcotest.test_case "wildcard" `Quick test_wildcard;
          Alcotest.test_case "data variables" `Quick test_data_variables;
          Alcotest.test_case "repeated variable" `Quick test_repeated_variable;
          Alcotest.test_case "constants" `Quick test_constants_in_pattern;
          Alcotest.test_case "nulls as values" `Quick test_nulls_as_values_in_matching;
        ] );
      ( "xml_query",
        [
          Alcotest.test_case "apply" `Quick test_query_apply;
          Alcotest.test_case "certain ~ naive" `Quick test_query_certain_agrees;
          Alcotest.test_case "certain constants" `Quick test_query_certain_constant_part;
        ] );
    ]
