(* Certdb_analysis: every classifier emits a certificate that can be
   re-checked, and the certificate-driven planner never changes a certain
   answer — only the algorithm that computes it. *)

open Certdb_values
open Certdb_query
module Obs = Certdb_obs.Obs
module Instance = Certdb_relational.Instance
module Safety = Certdb_analysis.Safety
module Monotone = Certdb_analysis.Monotone
module Hypergraph = Certdb_analysis.Hypergraph
module Wa = Certdb_analysis.Wa
module Plan = Certdb_analysis.Plan
module Fd = Certdb_analysis.Fd
module Independence = Certdb_analysis.Independence
module Footprint = Certdb_analysis.Footprint
module Constraints = Certdb_exchange.Constraints

let check = Alcotest.(check bool)
let c i = Value.int i
let v x = Fo.Var x

(* --- safety: range restriction with a derivation or a culprit --- *)

let test_safety_safe () =
  (* exists x. R(x) and not S(x): x is restricted by R before the
     negation subtracts *)
  let f =
    Fo.Exists
      ( [ "x" ],
        Fo.And (Fo.Atom ("R", [ v "x" ]), Fo.Not (Fo.Atom ("S", [ v "x" ]))) )
  in
  match Safety.analyze f with
  | Safety.Safe { derivation; _ } ->
    check "derivation is non-empty" true (derivation <> [])
  | Safety.Unsafe _ -> Alcotest.fail "expected Safe"

let test_safety_unsafe_quantified () =
  (* exists x, y. R(x): y ranges over nothing *)
  let f = Fo.Exists ([ "x"; "y" ], Fo.Atom ("R", [ v "x" ])) in
  match Safety.analyze f with
  | Safety.Unsafe { variable; _ } ->
    Alcotest.(check string) "culprit is y" "y" variable
  | Safety.Safe _ -> Alcotest.fail "expected Unsafe"

let test_safety_unsafe_free () =
  (* R(x) and not S(y): free y only occurs under the negation *)
  let f = Fo.And (Fo.Atom ("R", [ v "x" ]), Fo.Not (Fo.Atom ("S", [ v "y" ]))) in
  match Safety.analyze f with
  | Safety.Unsafe { variable; _ } ->
    Alcotest.(check string) "culprit is y" "y" variable
  | Safety.Safe _ -> Alcotest.fail "expected Unsafe"

let rec srnf_clean = function
  | Fo.Implies _ | Fo.Forall _ -> false
  | Fo.Not f | Fo.Exists (_, f) -> srnf_clean f
  | Fo.And (f, g) | Fo.Or (f, g) -> srnf_clean f && srnf_clean g
  | Fo.True | Fo.False | Fo.Atom _ | Fo.Eq _ -> true

let test_srnf_normalizes () =
  let f =
    Fo.Forall ([ "x" ], Fo.Implies (Fo.Atom ("R", [ v "x" ]), Fo.Atom ("S", [ v "x" ])))
  in
  check "srnf has no Implies/Forall" true (srnf_clean (Safety.srnf f));
  (* the rewritten universal is not safe-range: x under the inner negation *)
  match Safety.analyze f with
  | Safety.Unsafe { variable; _ } ->
    Alcotest.(check string) "culprit is x" "x" variable
  | Safety.Safe _ -> Alcotest.fail "expected Unsafe"

(* --- syntactic monotonicity --- *)

let test_monotone () =
  let ep =
    Fo.Exists ([ "x" ], Fo.Or (Fo.Atom ("R", [ v "x" ]), Fo.Atom ("S", [ v "x" ])))
  in
  check "existential-positive is monotone" true
    (Monotone.analyze ep = Monotone.Monotone);
  let offending construct f =
    match Monotone.analyze f with
    | Monotone.Not_syntactically_monotone { construct = got; _ } ->
      got = construct
    | Monotone.Monotone -> false
  in
  check "negation reported" true
    (offending `Negation (Fo.Not (Fo.Atom ("R", [ v "x" ]))));
  check "implication reported" true
    (offending `Implication (Fo.Implies (Fo.Atom ("R", [ v "x" ]), Fo.True)));
  check "universal reported" true
    (offending `Universal (Fo.Forall ([ "x" ], Fo.Atom ("R", [ v "x" ]))))

(* --- hypergraph: GYO trace is replayable, residual is irreducible --- *)

let path_cq =
  Cq.boolean [ ("R", [ v "x"; v "y" ]); ("S", [ v "y"; v "z" ]) ]

let triangle_cq =
  Cq.boolean
    [
      ("R", [ v "x"; v "y" ]);
      ("R", [ v "y"; v "z" ]);
      ("R", [ v "z"; v "x" ]);
    ]

module S = Set.Make (String)

let edges_of_cq q =
  List.mapi
    (fun i (a : Cq.atom) ->
      let vs =
        List.filter_map
          (function Fo.Var x -> Some x | Fo.Val _ -> None)
          a.Cq.args
      in
      (i, S.of_list vs))
    q.Cq.atoms

(* replay a GYO trace against the original hypergraph: every step must be
   justified by the current state, and the trace must end with nothing
   left *)
let replay q steps =
  let state = ref (List.filter (fun (_, vs) -> not (S.is_empty vs)) (edges_of_cq q)) in
  let ok = ref true in
  List.iter
    (fun step ->
      match step with
      | Hypergraph.Remove_vertex { vertex; edge } ->
        let holders =
          List.filter (fun (_, vs) -> S.mem vertex vs) !state
        in
        (match holders with
        | [ (i, _) ] when i = edge ->
          state :=
            List.filter_map
              (fun (i, vs) ->
                let vs = S.remove vertex vs in
                if S.is_empty vs then None else Some (i, vs))
              !state
        | _ -> ok := false)
      | Hypergraph.Absorb { edge; into } ->
        let find i = List.assoc_opt i !state in
        (match (find edge, find into) with
        | Some vs, Some ws when S.subset vs ws ->
          state := List.filter (fun (i, _) -> i <> edge) !state
        | _ -> ok := false))
    steps;
  !ok && !state = []

let test_gyo_acyclic () =
  let r = Hypergraph.analyze path_cq in
  (match r.Hypergraph.certificate with
  | Hypergraph.Acyclic { steps } ->
    check "trace replays to the empty hypergraph" true (replay path_cq steps)
  | Hypergraph.Cyclic _ -> Alcotest.fail "path CQ must be acyclic");
  Alcotest.(check int) "path width estimate" 1 r.Hypergraph.width_estimate

let test_gyo_cyclic () =
  let r = Hypergraph.analyze triangle_cq in
  (match r.Hypergraph.certificate with
  | Hypergraph.Cyclic { residual } ->
    Alcotest.(check int) "all three edges irreducible" 3 (List.length residual);
    (* irreducibility: no ear vertex, no absorbable edge *)
    let edges = List.map (fun (_, vs) -> S.of_list vs) residual in
    List.iter
      (fun vs ->
        S.iter
          (fun x ->
            let holders = List.filter (fun ws -> S.mem x ws) edges in
            check "no ear vertex remains" true (List.length holders > 1))
          vs)
      edges
  | Hypergraph.Acyclic _ -> Alcotest.fail "triangle must be cyclic");
  Alcotest.(check int) "triangle width estimate" 2 r.Hypergraph.width_estimate

(* --- weak acyclicity and the certified chase bound --- *)

let nx = Value.null 9001
let ny = Value.null 9002
let nz = Value.null 9003

let tgd body head = Constraints.tgd ~body ~head

let wa_set =
  (* R(x,y) -> S(y,z): one special edge, no cycle *)
  Constraints.make
    ~tgds:
      [
        tgd
          (Instance.of_list [ ("R", [ [ nx; ny ] ]) ])
          (Instance.of_list [ ("S", [ [ ny; nz ] ]) ]);
      ]
    ()

let diverging_set =
  (* R(x,y) -> R(y,z): the special edge R.1 -> R.1 closes a cycle *)
  Constraints.make
    ~tgds:
      [
        tgd
          (Instance.of_list [ ("R", [ [ nx; ny ] ]) ])
          (Instance.of_list [ ("R", [ [ ny; nz ] ]) ]);
      ]
    ()

let test_wa_terminates () =
  let d = Instance.of_list [ ("R", [ [ c 1; c 2 ] ]) ] in
  match Wa.analyze ~instance:d wa_set with
  | Wa.Terminates { round_bound; max_rank; ranks } ->
    check "round bound is positive" true (round_bound > 0);
    Alcotest.(check int) "max rank" 1 max_rank;
    check "every rank is bounded by max_rank" true
      (List.for_all (fun (_, r) -> r >= 0 && r <= max_rank) ranks)
  | Wa.Diverges _ -> Alcotest.fail "expected Terminates"

let test_wa_diverges () =
  match Wa.analyze diverging_set with
  | Wa.Diverges { cycle; special = src, dst } ->
    check "cycle is non-empty" true (cycle <> []);
    check "cycle passes through the special edge's source" true
      (List.mem src cycle);
    Alcotest.(check string) "special edge targets R" "R" (fst dst)
  | Wa.Terminates _ -> Alcotest.fail "expected Diverges"

let counter_value name = Obs.counter_value (Obs.counter name)

let test_chase_auto_certified () =
  let d = Instance.of_list [ ("R", [ [ c 1; c 2 ] ]) ] in
  let before = counter_value "exchange.chase.certified" in
  let chased = Constraints.chase d wa_set in
  Alcotest.(check int) "certified bound used" (before + 1)
    (counter_value "exchange.chase.certified");
  (* the certified bound reaches the same fixpoint as a generous cap, up
     to the names of the freshly invented nulls *)
  let reference = Constraints.chase ~max_rounds:1000 d wa_set in
  let module Hom = Certdb_relational.Hom in
  check "certified chase reaches the fixpoint" true
    (Instance.cardinal chased = Instance.cardinal reference
    && Hom.exists chased reference
    && Hom.exists reference chased);
  (* explicit ~max_rounds is the legacy Bounded mode: no counter *)
  let after = counter_value "exchange.chase.certified" in
  let _ = Constraints.chase ~max_rounds:10 d wa_set in
  Alcotest.(check int) "Bounded mode is uncounted" after
    (counter_value "exchange.chase.certified")

let test_chase_auto_uncertified () =
  (* not weakly acyclic, but the empty instance has nothing to chase:
     Auto falls back to the default cap and counts the fallback *)
  let before = counter_value "exchange.chase.uncertified" in
  let chased = Constraints.chase Instance.empty diverging_set in
  check "nothing derived" true (Instance.is_empty chased);
  Alcotest.(check int) "uncertified fallback counted" (before + 1)
    (counter_value "exchange.chase.uncertified")

let test_chase_certified_rejects_non_wa () =
  match Constraints.chase ~termination:`Certified Instance.empty diverging_set with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "`Certified must reject a non-weakly-acyclic set"

(* --- the planner: routes and answer preservation --- *)

let test_routes () =
  let route q = (Plan.route_cq q).Plan.route in
  check "non-Boolean goes to naive eval" true
    (route (Cq.make ~head:[ "x" ] [ ("R", [ v "x"; v "y" ]) ]) = Plan.Naive_eval);
  check "path goes to the acyclic join" true
    (route path_cq = Plan.Acyclic_join);
  check "triangle goes to the width-2 DP" true
    (route triangle_cq = Plan.Bounded_width 2);
  let clique4 =
    let vars = [ "w"; "x"; "y"; "z" ] in
    Cq.boolean
      (List.concat_map
         (fun a ->
           List.filter_map
             (fun b -> if a < b then Some ("R", [ v a; v b ]) else None)
             vars)
         vars)
  in
  check "4-clique exceeds the default threshold" true
    (route clique4 = Plan.Hom_ladder);
  check "a raised threshold reclaims it" true
    (match (Plan.route_cq ~width_threshold:3 clique4).Plan.route with
    | Plan.Bounded_width 3 -> true
    | _ -> false)

(* random Boolean CQs over a binary R, and random instances mixing
   constants with repeated nulls *)
let random_cq st =
  let vars = [| "x"; "y"; "z"; "w" |] in
  let term () =
    if Random.State.float st 1.0 < 0.8 then
      Fo.Var vars.(Random.State.int st (Array.length vars))
    else Fo.Val (c (1 + Random.State.int st 2))
  in
  let n = 1 + Random.State.int st 4 in
  Cq.boolean (List.init n (fun _ -> ("R", [ term (); term () ])))

let random_instance st =
  let value () =
    if Random.State.float st 1.0 < 0.7 then c (1 + Random.State.int st 3)
    else Value.null (8000 + Random.State.int st 2)
  in
  let n = Random.State.int st 6 in
  Instance.of_list [ ("R", List.init n (fun _ -> [ value (); value () ])) ]

let qcheck_planner_agrees_with_oracle =
  QCheck.Test.make ~count:300
    ~name:"Plan.certain (unlimited) agrees with certain_cq_via_hom"
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (s1, s2) ->
      let q = random_cq (Random.State.make [| s1 |]) in
      let d = random_instance (Random.State.make [| s2 |]) in
      match Plan.certain q d with
      | `Exact b -> b = Certain.certain_cq_via_hom q d
      | `Lower_bound _ ->
        QCheck.Test.fail_report "unlimited planner must answer `Exact")

let qcheck_btw_agrees_with_hom =
  QCheck.Test.make ~count:300
    ~name:"certain_cq_via_btw agrees with certain_cq_via_hom"
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (s1, s2) ->
      let q = random_cq (Random.State.make [| s1 |]) in
      let d = random_instance (Random.State.make [| s2 |]) in
      Certain.certain_cq_via_btw q d = Certain.certain_cq_via_hom q d)

let test_certain_answers_route () =
  let u =
    Ucq.make [ Cq.make ~head:[ "x" ] [ ("R", [ v "x"; v "y" ]) ] ]
  in
  let d =
    Instance.of_list
      [ ("R", [ [ c 1; c 2 ]; [ c 3; Value.null 8101 ] ]) ]
  in
  let before = counter_value "query.plan.naive_eval" in
  let got = Plan.certain_answers u d in
  Alcotest.(check int) "routed as naive eval" (before + 1)
    (counter_value "query.plan.naive_eval");
  check "agrees with Certain.certain_ucq" true
    (Instance.equal got (Certain.certain_ucq u d))

(* --- constraint certificates: FDs over nulls, independence, footprints --- *)

let fd_r = Fd.fd ~rel:"R" ~lhs:[ 0 ] ~rhs:[ 1 ]

let test_fd_verdicts () =
  let d =
    Instance.of_list [ ("R", [ [ c 1; c 2 ]; [ c 3; Value.null 8201 ] ]) ]
  in
  (match Fd.check d fd_r with
  | Fd.Certainly_satisfies (Fd.All_pairs_safe _) -> ()
  | _ -> Alcotest.fail "expected certain with an all-pairs-safe certificate");
  let d =
    Instance.of_list [ ("R", [ [ c 1; Value.null 8202 ]; [ c 1; c 3 ] ]) ]
  in
  (match Fd.check d fd_r with
  | Fd.Possibly_satisfies
      { sat = Fd.Completion_exists _; falsified = Fd.Violating_pair _ } ->
    ()
  | _ -> Alcotest.fail "expected possible with both witnesses");
  let d = Instance.of_list [ ("R", [ [ c 1; c 2 ]; [ c 1; c 3 ] ]) ] in
  match Fd.check d fd_r with
  | Fd.Certainly_violates (Fd.Forced_clash _) -> ()
  | _ -> Alcotest.fail "expected violated with a forced clash"

let test_independence_verdicts () =
  let a = Independence.atom ~rel:"R" ~x:[ 0 ] ~y:[ 1 ] in
  let product =
    Instance.of_list
      [ ("R", [ [ c 1; c 1 ]; [ c 1; c 2 ]; [ c 2; c 1 ]; [ c 2; c 2 ] ]) ]
  in
  (match Independence.check product a with
  | Fd.Certainly_satisfies (Independence.Product_holds _) -> ()
  | _ -> Alcotest.fail "expected certain with a product certificate");
  let missing = Instance.of_list [ ("R", [ [ c 1; c 1 ]; [ c 2; c 2 ] ]) ] in
  match Independence.check missing a with
  | Fd.Certainly_violates (Independence.Missing_combination _) -> ()
  | _ -> Alcotest.fail "expected violated with a missing combination"

(* random binary-R instances with at most 3 distinct nulls: small enough
   for the exponential oracles, null-rich enough to hit all three grades *)
let random_null_instance ?(arity = 2) ?(null_pool = 3) st =
  let value () =
    if Random.State.float st 1.0 < 0.6 then c (1 + Random.State.int st 3)
    else Value.null (8300 + Random.State.int st null_pool)
  in
  let n = Random.State.int st 5 in
  Instance.of_list
    [ ("R", List.init n (fun _ -> List.init arity (fun _ -> value ()))) ]

let qcheck_fd_agrees_with_brute_force =
  QCheck.Test.make ~count:300 ~name:"Fd.check grade agrees with brute_force"
    QCheck.(int_range 0 100_000)
    (fun s ->
      let d = random_null_instance (Random.State.make [| s |]) in
      List.for_all
        (fun f -> Fd.grade (Fd.check d f) = Fd.brute_force d f)
        [ fd_r; Fd.fd ~rel:"R" ~lhs:[ 1 ] ~rhs:[ 0 ] ])

let qcheck_independence_agrees_with_brute_force =
  QCheck.Test.make ~count:300
    ~name:"Independence.check grade agrees with brute_force"
    QCheck.(int_range 0 100_000)
    (fun s ->
      (* arity 3 leaves a column outside X∪Y, so nulls irrelevant to
         the atom are exercised too *)
      let d =
        random_null_instance ~arity:3 ~null_pool:2 (Random.State.make [| s |])
      in
      let a = Independence.atom ~rel:"R" ~x:[ 0 ] ~y:[ 1 ] in
      Fd.grade (Independence.check d a) = Independence.brute_force d a)

let test_footprint_key_and_overlap () =
  let q =
    Cq.make ~head:[ "x" ]
      [ ("R", [ v "x"; v "y" ]); ("S", [ v "x"; Fo.Val (c 1) ]) ]
  in
  let fp = Footprint.of_cq q in
  (* R.2 holds the non-head, non-join y: existence-only, outside the key *)
  Alcotest.(check string) "key" "R[1] S[1 2] # 1" (Footprint.to_key fp);
  check "tuple-level R touch overlaps" true
    (Footprint.overlaps fp (Footprint.touch_rel "R"));
  check "update to the constrained R.1 overlaps" true
    (Footprint.overlaps fp (Footprint.touch_cols "R" [ 0 ]));
  check "update to the free R.2 is disjoint" false
    (Footprint.overlaps fp (Footprint.touch_cols "R" [ 1 ]));
  check "unmentioned relation is disjoint" false
    (Footprint.overlaps fp (Footprint.touch_rel "T"));
  (* B(x,y) -> R(x,y): a touch on B can fire into R, so the closure
     pulls B in at every position *)
  let deps =
    Constraints.make
      ~tgds:
        [
          tgd
            (Instance.of_list [ ("B", [ [ nx; ny ] ]) ])
            (Instance.of_list [ ("R", [ [ nx; ny ] ]) ]);
        ]
      ()
  in
  let closed = Footprint.close_under_tgds deps fp in
  check "closure reaches the tgd body" true
    (Footprint.overlaps closed (Footprint.touch_cols "B" [ 1 ]));
  check "closure leaves unrelated relations out" false
    (Footprint.overlaps closed (Footprint.touch_rel "T"))

(* every route bumps its query.plan.* counter exactly once, and no
   other route's counter moves *)
let plan_counters =
  [
    "query.plan.naive_eval";
    "query.plan.acyclic_join";
    "query.plan.bounded_width";
    "query.plan.components";
    "query.plan.hom_ladder";
    "query.plan.fd_naive";
  ]

let check_single_bump name run =
  let before = List.map (fun n -> (n, counter_value n)) plan_counters in
  run ();
  List.iter
    (fun (n, b) ->
      let expected = if n = name then b + 1 else b in
      Alcotest.(check int) n expected (counter_value n))
    before

let test_route_counters_exactly_once () =
  let d = Instance.of_list [ ("R", [ [ c 1; c 2 ]; [ c 2; c 1 ] ]) ] in
  check_single_bump "query.plan.naive_eval" (fun () ->
      ignore
        (Plan.certain_answers
           (Ucq.make [ Cq.make ~head:[ "x" ] [ ("R", [ v "x"; v "y" ]) ] ])
           d));
  check_single_bump "query.plan.acyclic_join" (fun () ->
      ignore (Plan.certain path_cq d));
  check_single_bump "query.plan.bounded_width" (fun () ->
      ignore (Plan.certain triangle_cq d));
  check_single_bump "query.plan.hom_ladder" (fun () ->
      ignore (Plan.certain ~width_threshold:0 triangle_cq d));
  check_single_bump "query.plan.fd_naive" (fun () ->
      ignore (Plan.certain ~width_threshold:0 ~fds:[ fd_r ] triangle_cq d));
  let two_triangles =
    Cq.boolean
      [
        ("R", [ v "x"; v "y" ]);
        ("R", [ v "y"; v "z" ]);
        ("R", [ v "z"; v "x" ]);
        ("R", [ v "a"; v "b" ]);
        ("R", [ v "b"; v "e" ]);
        ("R", [ v "e"; v "a" ]);
      ]
  in
  check_single_bump "query.plan.components" (fun () ->
      ignore (Plan.certain ~width_threshold:0 two_triangles d))

let () =
  Random.self_init ();
  Alcotest.run "analysis"
    [
      ( "safety",
        [
          Alcotest.test_case "safe with derivation" `Quick test_safety_safe;
          Alcotest.test_case "unsafe quantified" `Quick
            test_safety_unsafe_quantified;
          Alcotest.test_case "unsafe free" `Quick test_safety_unsafe_free;
          Alcotest.test_case "srnf normalizes" `Quick test_srnf_normalizes;
        ] );
      ( "monotonicity",
        [ Alcotest.test_case "certificates" `Quick test_monotone ] );
      ( "hypergraph",
        [
          Alcotest.test_case "GYO trace replays" `Quick test_gyo_acyclic;
          Alcotest.test_case "cyclic residual irreducible" `Quick
            test_gyo_cyclic;
        ] );
      ( "weak acyclicity",
        [
          Alcotest.test_case "terminates with bound" `Quick test_wa_terminates;
          Alcotest.test_case "diverges with cycle" `Quick test_wa_diverges;
          Alcotest.test_case "chase Auto certified" `Quick
            test_chase_auto_certified;
          Alcotest.test_case "chase Auto uncertified" `Quick
            test_chase_auto_uncertified;
          Alcotest.test_case "`Certified rejects non-WA" `Quick
            test_chase_certified_rejects_non_wa;
        ] );
      ( "planner",
        [
          Alcotest.test_case "routes" `Quick test_routes;
          QCheck_alcotest.to_alcotest qcheck_planner_agrees_with_oracle;
          QCheck_alcotest.to_alcotest qcheck_btw_agrees_with_hom;
          Alcotest.test_case "certain_answers route" `Quick
            test_certain_answers_route;
          Alcotest.test_case "route counters exactly once" `Quick
            test_route_counters_exactly_once;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "fd verdicts and certificates" `Quick
            test_fd_verdicts;
          Alcotest.test_case "independence verdicts" `Quick
            test_independence_verdicts;
          QCheck_alcotest.to_alcotest qcheck_fd_agrees_with_brute_force;
          QCheck_alcotest.to_alcotest
            qcheck_independence_agrees_with_brute_force;
        ] );
      ( "footprint",
        [
          Alcotest.test_case "key and overlap" `Quick
            test_footprint_key_and_overlap;
        ] );
    ]
