(* Shared helpers for the experiment harness: section headers, row
   printing, wall-clock timing, and Bechamel micro-benchmark runs. *)

let banner title =
  Printf.printf "\n=============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "=============================================================\n%!"

let subsection title = Printf.printf "\n--- %s ---\n%!" title

let row fmt = Printf.printf (fmt ^^ "\n%!")

(* Wall-clock of a thunk in milliseconds. *)
let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, (t1 -. t0) *. 1000.)

(* Median wall-clock over [n] runs. *)
let time_ms_median ?(runs = 3) f =
  let samples =
    List.init runs (fun _ -> snd (time_ms f)) |> List.sort compare
  in
  List.nth samples (runs / 2)

(* Bechamel micro-benchmarks: measure each (name, thunk) and print ns/run
   estimated by OLS on the monotonic clock. *)
let micro ?(quota = 0.5) tests =
  let open Bechamel in
  let open Toolkit in
  let tests =
    List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) tests
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second quota)
      ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> row "  %-44s %12.0f ns/run" name est
          | _ -> row "  %-44s (no estimate)" name)
        results)
    tests
