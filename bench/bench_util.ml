(* Shared helpers for the experiment harness: section headers, row
   printing, wall-clock timing, counter reads against the lib/obs
   registry, machine-readable JSON records, and Bechamel micro-benchmark
   runs. *)

module Obs = Certdb_obs.Obs

let banner title =
  Printf.printf "\n=============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "=============================================================\n%!"

let subsection title = Printf.printf "\n--- %s ---\n%!" title

let row fmt = Printf.printf (fmt ^^ "\n%!")

(* Wall-clock of a thunk in milliseconds. *)
let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, (t1 -. t0) *. 1000.)

(* Median wall-clock over [runs] timed runs, after [warmup] untimed runs
   that let allocation and code paths settle. *)
let time_ms_median ?(runs = 3) ?(warmup = 1) f =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let samples =
    List.init runs (fun _ -> snd (time_ms f)) |> List.sort Float.compare
  in
  List.nth samples (runs / 2)

(* [with_counter name f] runs [f] and returns its result paired with the
   delta of the obs counter [name] across the call. *)
let with_counter name f =
  let c = Obs.counter name in
  let before = Obs.counter_value c in
  let r = f () in
  (r, Obs.counter_value c - before)

(* One machine-readable record of a bench run: wall-clock plus the whole
   metric snapshot (decision counters, instance-size gauges, span
   timers). *)
let bench_record ~name ~title ~wall_ms (m : Obs.metrics) =
  let open Obs.Json in
  Obj
    [
      ("experiment", String name);
      ("title", String title);
      ("wall_ms", Float wall_ms);
      ("counters", Obj (List.map (fun (n, v) -> (n, Int v)) m.Obs.counters));
      ("gauges", Obj (List.map (fun (n, v) -> (n, Float v)) m.Obs.gauges));
      ( "timers",
        Obj
          (List.map
             (fun (n, (s : Obs.timer_stats)) ->
               ( n,
                 Obj
                   [
                     ("count", Int s.Obs.count);
                     ("total_ms", Float s.Obs.total_ms);
                     ("mean_ms", Float s.Obs.mean_ms);
                   ] ))
             m.Obs.timers) );
    ]

let write_bench_json ~path records =
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "certdb-bench/v1");
        ("unix_time", Obs.Json.Float (Unix.time ()));
        ("records", Obs.Json.List records);
      ]
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Obs.Json.to_string doc);
      Out_channel.output_char oc '\n')

(* Bechamel micro-benchmarks: measure each (name, thunk) and print ns/run
   estimated by OLS on the monotonic clock. *)
let micro ?(quota = 0.5) tests =
  let open Bechamel in
  let open Toolkit in
  let tests =
    List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) tests
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second quota)
      ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> row "  %-44s %12.0f ns/run" name est
          | _ -> row "  %-44s (no estimate)" name)
        results)
    tests
