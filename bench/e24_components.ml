(* E24 — the interned/bitset data layer and component-parallel search.

   Two claims, both oracle-checked in-process:

   - single-thread: the compiled bitset engine beats the preserved
     map/set [Engine.Reference] core on the E19-style budgeted hom
     family (same outcomes, identical search tree) — gauge
     [bench.components.core_speedup], expected >= 1.5;
   - multi-component: a source with many connected components scales
     with [--jobs] through [Engine.Components] (answers identical at
     every job count, and never flipping the whole-instance answer) —
     gauges [bench.components.speedup_j2] / [bench.components.speedup_j4],
     and [bench.components.count] records the component count.  Like
     E19's pool gauges, the speedups sit near (or below) 1.0 on a
     single-core host; the multi-core scaling shows on CI. *)

module Engine = Certdb_csp.Engine
module Structure = Certdb_csp.Structure
module Obs = Certdb_obs.Obs
open Certdb_graph

let graph ~seed ~vertices ~edge_prob =
  Digraph.to_structure (Digraph.random ~seed ~vertices ~edge_prob ())

(* E19-style family: independent budgeted hom searches on random digraph
   pairs, a mix of satisfiable and exhaustively-refuted instances. *)
let core_tasks n =
  List.init n (fun i ->
      let source = graph ~seed:i ~vertices:8 ~edge_prob:0.3 in
      let target = graph ~seed:(i + 1000) ~vertices:11 ~edge_prob:0.25 in
      (source, target))

let limits = Engine.Limits.make ~nodes:400_000 ()
let config = Engine.Config.make ~limits ()

let solve_core engine tasks =
  List.map
    (fun (source, target) ->
      Engine.decision_of_outcome
        (match engine with
        | `Bitset -> Engine.satisfiable ~config ~source ~target ()
        | `Reference -> Engine.Reference.satisfiable ~config ~source ~target ()))
    tasks

let core_family () =
  let tasks = core_tasks 20 in
  Bench_util.subsection
    (Printf.sprintf "interned/bitset core vs reference: %d budgeted searches"
       (List.length tasks));
  let bitset = solve_core `Bitset tasks in
  let reference = solve_core `Reference tasks in
  if bitset <> reference then failwith "E24: core engines disagree";
  let t_ref = Bench_util.time_ms_median (fun () -> solve_core `Reference tasks) in
  let t_bit = Bench_util.time_ms_median (fun () -> solve_core `Bitset tasks) in
  let speedup = t_ref /. t_bit in
  Obs.set (Obs.gauge "bench.components.core_speedup") speedup;
  Bench_util.row "%-12s %-12s" "engine" "wall(ms)";
  Bench_util.row "%-12s %-12.2f" "reference" t_ref;
  Bench_util.row "%-12s %-12.2f" "bitset" t_bit;
  Bench_util.row "speedup: %.2fx (oracle: outcomes identical)" speedup

(* E22-flavoured shape: a cartesian-product workload — one instance with
   many independent components, the unit the service's --jobs now
   parallelizes {e within} a query.  Per-component searches must dwarf the domain-spawn cost for the
   scaling to be visible.  [K3] is symmetric, so hom into it is exactly
   3-coloring; components drawn at the 3-colorability threshold (average
   degree ≈ 4.6) force a deep refutation tree on the unsat ones. *)
let coloring_source seed k =
  let component i =
    graph ~seed:(seed + (31 * i)) ~vertices:40 ~edge_prob:0.075
  in
  List.fold_left
    (fun acc i ->
      let u, _, _ = Structure.disjoint_union acc (component i) in
      u)
    (component 0)
    (List.init (k - 1) (fun i -> i + 1))

let k3 = Digraph.to_structure (Digraph.clique 3)

let component_tasks n =
  List.init n (fun i -> (coloring_source (i * 13) 48, k3))

let solve_components jobs tasks =
  List.map
    (fun (source, target) ->
      Engine.decision_of_outcome
        (Engine.Components.satisfiable ~config ~jobs ~source ~target ()))
    tasks

let components_family () =
  let tasks = component_tasks 1 in
  let comp_count =
    List.fold_left
      (fun acc (s, _) -> acc + Engine.Components.count s)
      0 tasks
  in
  Bench_util.subsection
    (Printf.sprintf
       "component-parallel: %d multi-component instances (%d components)"
       (List.length tasks) comp_count);
  Obs.set_int (Obs.gauge "bench.components.count") comp_count;
  (* oracle: where both runs reach a definitive answer they must agree —
     the split may legitimately {e refine} a whole-instance [`Unknown]
     (each component runs under the full node budget, and refuting one
     unsat component is exponentially easier than refuting its cartesian
     product with the rest) *)
  let whole =
    List.map
      (fun (source, target) ->
        Engine.decision_of_outcome
          (Engine.satisfiable ~config ~source ~target ()))
      tasks
  in
  let baseline = solve_components 1 tasks in
  let refined =
    List.fold_left2
      (fun acc w s ->
        match (w, s) with
        | (`True | `False), (`True | `False) when w <> s ->
          failwith "E24: component split flips a definitive answer"
        | `Unknown _, (`True | `False) -> acc + 1
        | _ -> acc)
      0 whole baseline
  in
  Bench_util.row
    "oracle: definitive answers agree; split refined %d budget-tripped \
     whole-instance runs"
    refined;
  let t1 = Bench_util.time_ms_median (fun () -> solve_components 1 tasks) in
  Bench_util.row "%-8s %-12s %-12s %-10s" "jobs" "wall(ms)" "speedup" "same";
  Bench_util.row "%-8d %-12.2f %-12.2f %-10s" 1 t1 1.0 "yes";
  List.iter
    (fun jobs ->
      let results = solve_components jobs tasks in
      let tn = Bench_util.time_ms_median (fun () -> solve_components jobs tasks) in
      let same = results = baseline in
      let speedup = t1 /. tn in
      Obs.set
        (Obs.gauge (Printf.sprintf "bench.components.speedup_j%d" jobs))
        speedup;
      Bench_util.row "%-8d %-12.2f %-12.2f %-10s" jobs tn speedup
        (if same then "yes" else "NO");
      if not same then
        failwith (Printf.sprintf "E24: results diverge at --jobs %d" jobs))
    [ 2; 4 ]

let run () =
  Bench_util.banner
    "E24  interned columnar core and component-parallel hom search";
  core_family ();
  components_family ()

let micro () =
  let tasks = core_tasks 6 in
  let ctasks = component_tasks 1 in
  Bench_util.micro
    [
      ("e24/core-bitset", fun () -> ignore (solve_core `Bitset tasks));
      ("e24/core-reference", fun () -> ignore (solve_core `Reference tasks));
      ("e24/components-j1", fun () -> ignore (solve_components 1 ctasks));
      ("e24/components-j4", fun () -> ignore (solve_components 4 ctasks));
    ]
