(* Ablations called out in DESIGN.md:
   - CSP solver: MRV + forward checking vs naive lexicographic backtracking
     (branching decisions explored);
   - bounded-treewidth DP: bag enumeration with vs without the candidate
     relation R pruning (bag assignments enumerated);
   - glb core reduction: eager core after every pairwise glb vs one core at
     the end. *)

open Certdb_values
open Certdb_csp
open Certdb_graph
open Certdb_relational

let run () =
  Bench_util.banner "Ablations";

  Bench_util.subsection
    "csp solver: MRV + propagation vs naive backtracking (decisions)";
  Bench_util.row "%-22s %-12s %-12s %-10s %-10s" "instance" "mrv-steps"
    "naive-steps" "mrv(ms)" "naive(ms)";
  List.iter
    (fun (name, source, target) ->
      let (_, mrv_ms), mrv_steps =
        Bench_util.with_counter "csp.solver.decisions" (fun () ->
            Bench_util.time_ms (fun () ->
                ignore (Solver.find_hom ~source ~target ())))
      in
      let (_, naive_ms), naive_steps =
        Bench_util.with_counter "csp.solver.naive.decisions" (fun () ->
            Bench_util.time_ms (fun () ->
                ignore (Solver.find_hom_naive ~source ~target ())))
      in
      Bench_util.row "%-22s %-12d %-12d %-10.2f %-10.2f" name mrv_steps
        naive_steps mrv_ms naive_ms)
    [
      ( "C12 -> C6",
        Digraph.to_structure (Digraph.cycle 12),
        Digraph.to_structure (Digraph.cycle 6) );
      ( "C9 -> C4 (no hom)",
        Digraph.to_structure (Digraph.cycle 9),
        Digraph.to_structure (Digraph.cycle 4) );
      ( "grid3x3 -> K3",
        Digraph.to_structure (Digraph.grid 3 3),
        Digraph.to_structure (Digraph.clique 3) );
      ( "P16 -> C8",
        Digraph.to_structure (Digraph.path 16),
        Digraph.to_structure (Digraph.cycle 8) );
    ];

  Bench_util.subsection
    "AC-3 preprocessing: revisions + combined solve vs plain backtracking";
  Bench_util.row "%-22s %-12s %-12s %-12s" "instance" "ac3-revs"
    "ac3+mrv(ms)" "mrv(ms)";
  List.iter
    (fun (name, source, target) ->
      let (_, ac3_ms), revs =
        Bench_util.with_counter "csp.ac3.revisions" (fun () ->
            Bench_util.time_ms (fun () ->
                ignore (Arc_consistency.find_hom ~source ~target ())))
      in
      let _, mrv_ms =
        Bench_util.time_ms (fun () ->
            ignore (Solver.find_hom ~source ~target ()))
      in
      Bench_util.row "%-22s %-12d %-12.2f %-12.2f" name revs ac3_ms mrv_ms)
    [
      ( "C12 -> C6",
        Digraph.to_structure (Digraph.cycle 12),
        Digraph.to_structure (Digraph.cycle 6) );
      ( "C9 -> C4 (no hom)",
        Digraph.to_structure (Digraph.cycle 9),
        Digraph.to_structure (Digraph.cycle 4) );
      ( "grid4x4 -> K3",
        Digraph.to_structure (Digraph.grid 4 4),
        Digraph.to_structure (Digraph.clique 3) );
    ];

  Bench_util.subsection
    "bounded-tw DP: bag assignments with vs without R pruning";
  (* membership instance: tree-shaped Codd database into a grounding *)
  let mk_tree ~seed ~nodes =
    Certdb_gdm.Ggen.tree ~seed ~nodes ~labels:[ "a" ] ~null_prob:0.4
      ~domain:3 ()
  in
  let open Certdb_gdm in
  Bench_util.row "%-8s %-14s %-14s" "nodes" "with-R" "without-R";
  List.iter
    (fun nodes ->
      let d = mk_tree ~seed:5 ~nodes in
      let d' = Gdb.ground (mk_tree ~seed:6 ~nodes:(nodes + 4)) in
      let source = Gdb.structure d and target = Gdb.structure d' in
      let _, with_r =
        Bench_util.with_counter "csp.btw.bag_assignments" (fun () ->
            Bounded_tw.r_hom ~source ~target
              ~restrict:(Membership.candidate_relation d d')
              ())
      in
      let _, without_r =
        Bench_util.with_counter "csp.btw.bag_assignments" (fun () ->
            Bounded_tw.hom ~source ~target ())
      in
      Bench_util.row "%-8d %-14d %-14d" nodes with_r without_r)
    [ 8; 16; 32 ];

  Bench_util.subsection "glb families: eager vs lazy core reduction";
  let table ~offset ~tuples =
    Instance.of_list
      [ ("R",
         List.init tuples (fun i -> [ Value.int (offset + i); Value.fresh_null () ])) ]
  in
  Bench_util.row "%-4s %-14s %-14s %-12s %-12s" "k" "lazy(ms)" "eager(ms)"
    "|lazy|" "|eager|";
  List.iter
    (fun k ->
      let tables = List.init k (fun i -> table ~offset:(i * 10) ~tuples:3) in
      let lazy_result, lazy_ms =
        Bench_util.time_ms (fun () -> Core_instance.core (Glb.family tables))
      in
      let eager_result, eager_ms =
        Bench_util.time_ms (fun () ->
            match tables with
            | [] -> assert false
            | t :: ts ->
              List.fold_left
                (fun acc t' -> Core_instance.core (Glb.glb acc t'))
                t ts)
      in
      Bench_util.row "%-4d %-14.2f %-14.2f %-12d %-12d" k lazy_ms eager_ms
        (Instance.cardinal lazy_result)
        (Instance.cardinal eager_result))
    [ 2; 3; 4 ]
