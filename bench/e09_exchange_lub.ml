(* E9 — Theorem 5: universal solutions are the lubs of M(D).  Shape: the
   canonical solution (disjoint union of single-rule applications) is a
   solution and maps into every sampled solution; the core solution is
   equivalent but smaller on redundant sources; the chase scales linearly
   in the source. *)

open Certdb_values
open Certdb_relational
open Certdb_gdm
open Certdb_exchange

let nx = Value.null 3001
let ny = Value.null 3002
let nu = Value.null 3003
let nz = Value.null 3004

let mapping () =
  [
    (* S(x,y,u) -> T(x,z), T(z,y) *)
    Mapping.relational_rule
      ~body:(Instance.of_list [ ("S", [ [ nx; ny; nu ] ]) ])
      ~head:(Instance.of_list [ ("T", [ [ nx; nz ]; [ nz; ny ] ]) ]);
    (* S(x,y,u) -> U(y) *)
    Mapping.relational_rule
      ~body:(Instance.of_list [ ("S", [ [ nx; ny; nu ] ]) ])
      ~head:(Instance.of_list [ ("U", [ [ ny ] ]) ]);
  ]

let source ~seed ~facts ~redundancy =
  let st = Random.State.make [| seed |] in
  let tuples =
    List.init facts (fun i ->
        let base = i / redundancy in
        [ Value.int base; Value.int (base + 100);
          Value.int (Random.State.int st 50) ])
  in
  Instance.of_list [ ("S", tuples) ]

let run () =
  Bench_util.banner
    "E9  Theorem 5: universal solutions = least upper bounds of M(D)";
  Bench_util.row "%-8s %-10s %-10s %-10s %-10s %-12s" "source" "canonical"
    "core" "solution" "universal" "chase(ms)";
  let m = mapping () in
  List.iter
    (fun facts ->
      let src = source ~seed:facts ~facts ~redundancy:2 in
      let gdm_src = Encode.of_instance src in
      let canonical, chase_ms =
        Bench_util.time_ms (fun () -> Universal.canonical_solution m gdm_src)
      in
      let core = Universal.core_solution_relational m gdm_src in
      let is_sol = Solution.is_solution m ~source:gdm_src canonical in
      let samples =
        Solution.random_solutions m ~source:gdm_src ~seed:(facts + 7) ~count:3
      in
      let universal =
        Solution.is_universal_vs m ~source:gdm_src canonical ~solutions:samples
      in
      Bench_util.row "%-8d %-10d %-10d %-10b %-10b %-12.2f"
        (Instance.cardinal src) (Gdb.size canonical) (Instance.cardinal core)
        is_sol universal chase_ms)
    [ 4; 8; 16; 32 ];

  Bench_util.subsection
    "core shrinkage grows with source redundancy (fixed 12 source facts)";
  Bench_util.row "%-12s %-12s %-8s" "redundancy" "canonical" "core";
  List.iter
    (fun redundancy ->
      let src = source ~seed:5 ~facts:12 ~redundancy in
      let gdm_src = Encode.of_instance src in
      let canonical = Universal.canonical_solution m gdm_src in
      let core = Universal.core_solution_relational m gdm_src in
      Bench_util.row "%-12d %-12d %-8d" redundancy (Gdb.size canonical)
        (Instance.cardinal core))
    [ 1; 2; 3; 4 ]

let micro () =
  let m = mapping () in
  let src = Encode.of_instance (source ~seed:1 ~facts:16 ~redundancy:2) in
  Bench_util.micro
    [
      ("e9/chase-16", fun () -> ignore (Universal.canonical_solution m src));
    ]
