(* E5 — Prop. 4: the 1990s powerdomain ordering ⪯ coincides with the
   information ordering ⊑ on Codd databases and diverges on naïve ones.
   Shape: 100% agreement on Codd data; strictly positive divergence rate on
   naïve data (⪯ accepts, ⊑ rejects); ⪯ stays polynomial as size grows. *)

open Certdb_relational

let run () =
  Bench_util.banner
    "E5  Prop. 4: hoare-lift vs homomorphism ordering (Codd vs naive)";
  Bench_util.row "%-8s %-8s %-12s %-12s %-12s" "kind" "facts" "agree"
    "hoare-only" "trials";
  let trials = 60 in
  List.iter
    (fun (kind, facts, null_pool) ->
      let agree = ref 0 and hoare_only = ref 0 in
      for seed = 0 to trials - 1 do
        let mk s =
          match kind with
          | `Codd ->
            Codd.random ~seed:s ~schema:[ ("R", 2) ] ~facts ~null_prob:0.4
              ~domain:3 ()
          | `Naive ->
            Codd.random_naive ~seed:s ~schema:[ ("R", 2) ] ~facts
              ~null_prob:0.5 ~domain:2 ~null_pool ()
        in
        let d = mk (seed * 2) and d' = mk ((seed * 2) + 1) in
        let h = Ordering.hoare_leq d d' and l = Ordering.leq d d' in
        if h = l then incr agree;
        if h && not l then incr hoare_only
      done;
      Bench_util.row "%-8s %-8d %-12d %-12d %-12d"
        (match kind with `Codd -> "codd" | `Naive -> "naive")
        facts !agree !hoare_only trials)
    [ (`Codd, 4, 0); (`Codd, 8, 0); (`Naive, 3, 2); (`Naive, 4, 2); (`Naive, 5, 2) ];

  Bench_util.subsection "polynomial ⪯ vs homomorphism search as size grows (Codd)";
  Bench_util.row "%-8s %-12s %-12s" "facts" "hoare(ms)" "hom(ms)";
  List.iter
    (fun facts ->
      let d =
        Codd.random ~seed:11 ~schema:[ ("R", 2) ] ~facts ~null_prob:0.4
          ~domain:6 ()
      in
      let d' =
        Codd.random ~seed:12 ~schema:[ ("R", 2) ] ~facts ~null_prob:0.0
          ~domain:6 ()
      in
      let h_ms = Bench_util.time_ms_median (fun () -> ignore (Ordering.hoare_leq d d')) in
      let l_ms = Bench_util.time_ms_median (fun () -> ignore (Ordering.leq d d')) in
      Bench_util.row "%-8d %-12.3f %-12.3f" facts h_ms l_ms)
    [ 8; 16; 32; 64 ]

let micro () =
  let d =
    Codd.random ~seed:1 ~schema:[ ("R", 2) ] ~facts:32 ~null_prob:0.4
      ~domain:5 ()
  in
  let d' =
    Codd.random ~seed:2 ~schema:[ ("R", 2) ] ~facts:32 ~null_prob:0.0
      ~domain:5 ()
  in
  Bench_util.micro
    [
      ("e5/hoare-32", fun () -> ignore (Ordering.hoare_leq d d'));
      ("e5/hom-32", fun () -> ignore (Ordering.leq d d'));
    ]
