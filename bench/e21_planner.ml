(* E21 — the certificate-driven planner: routing Boolean CQ certainty by
   hypergraph shape vs always running the Prop. 2 hom ladder vs always
   running naive evaluation.  Three query families stress the three
   routes (paths are GYO-acyclic, cycles have width 2, cliques exceed the
   width threshold), over random naive instances mixing constants with
   repeated nulls.  Every strategy's answers are checked against the
   unlimited hom oracle, so the planner can only change cost, never an
   answer; the route mix is visible in the query.plan.* counters of the
   --json record. *)

open Certdb_values
open Certdb_query
module Instance = Certdb_relational.Instance
module Plan = Certdb_analysis.Plan
module Obs = Certdb_obs.Obs

let v x = Fo.Var x
let var i = v (Printf.sprintf "x%d" i)

(* path-k: R(x1,x2), ..., R(xk,xk+1) — GYO-acyclic *)
let path_q k =
  Cq.boolean (List.init k (fun i -> ("R", [ var i; var (i + 1) ])))

(* cycle-k: width-2 but cyclic *)
let cycle_q k =
  Cq.boolean
    (List.init k (fun i -> ("R", [ var i; var ((i + 1) mod k) ])))

(* clique-k: width k-1 — past the default threshold for k >= 4 *)
let clique_q k =
  let ids = List.init k Fun.id in
  Cq.boolean
    (List.concat_map
       (fun a ->
         List.filter_map
           (fun b -> if a < b then Some ("R", [ var a; var b ]) else None)
           ids)
       ids)

let families =
  [
    ("path-6", path_q 6);
    ("cycle-5", cycle_q 5);
    ("clique-4", clique_q 4);
  ]

(* random naive instances: constants 1..4 plus two shared nulls, dense
   enough that a fair share of the certainty checks come out true *)
let instances n =
  List.init n (fun i ->
      let st = Random.State.make [| 0xe21; i |] in
      let value () =
        if Random.State.float st 1.0 < 0.75 then
          Value.int (1 + Random.State.int st 4)
        else Value.null (8200 + Random.State.int st 2)
      in
      let facts = 4 + Random.State.int st 8 in
      Instance.of_list
        [ ("R", List.init facts (fun _ -> [ value (); value () ])) ])

let strategies =
  [
    ( "planner",
      fun q d ->
        match Plan.certain q d with `Exact b | `Lower_bound b -> b );
    ("always-hom", Certain.certain_cq_via_hom);
    ("always-naive", Certain.certain_cq_via_naive);
  ]

let run () =
  Bench_util.banner
    "E21  Planner: certificate-driven routing vs fixed strategies";
  let ds = instances 40 in
  Bench_util.row "%d random instances per family" (List.length ds);
  Bench_util.row "%-10s %-9s %-13s %-9s %-10s %-10s" "family" "route"
    "strategy" "certain" "wall(ms)" "sound";
  List.iter
    (fun (fname, q) ->
      let route = Plan.route_to_string (Plan.route_cq q).Plan.route in
      let oracle = List.map (Certain.certain_cq_via_hom q) ds in
      List.iter
        (fun (sname, strategy) ->
          let answers = List.map (strategy q) ds in
          let ms =
            Bench_util.time_ms_median (fun () ->
                List.iter (fun d -> ignore (strategy q d)) ds)
          in
          let sound = List.for_all2 Bool.equal answers oracle in
          let certain = List.length (List.filter Fun.id answers) in
          Bench_util.row "%-10s %-9s %-13s %-9d %-10.2f %-10s" fname route
            sname certain ms
            (if sound then "yes" else "NO");
          if not sound then
            failwith
              (Printf.sprintf
                 "E21: strategy %S on family %S contradicted the hom oracle"
                 sname fname))
        strategies)
    families;
  Bench_util.row "\nroute mix of the planner runs (query.plan.* counters):";
  List.iter
    (fun name ->
      Bench_util.row "  %-28s %d" name
        (Obs.counter_value (Obs.counter ("query.plan." ^ name))))
    [ "naive_eval"; "acyclic_join"; "bounded_width"; "hom_ladder" ]

let micro () =
  let ds = instances 8 in
  let all strategy q () = List.iter (fun d -> ignore (strategy q d)) ds in
  Bench_util.micro
    [
      ( "e21/planner-path6",
        all (fun q d -> Plan.certain q d) (path_q 6) );
      ("e21/hom-path6", all Certain.certain_cq_via_hom (path_q 6));
      ( "e21/planner-clique4",
        all (fun q d -> Plan.certain q d) (clique_q 4) );
      ("e21/hom-clique4", all Certain.certain_cq_via_hom (clique_q 4));
    ]
