(* E17 — Prop. 3 / Prop. 9: the information ordering D ⊑ D′ (defined as
   [[D′]] ⊆ [[D]]) is exactly homomorphism existence — for relations, for
   trees, and for generalized databases.  Shape: over random pairs, the
   homomorphism test agrees with direct semantic containment checked on
   sampled completions (hom ⇒ containment exactly; no-hom refuted by an
   explicit witness completion, namely the canonical grounding). *)

open Certdb_relational
open Certdb_xml

(* D ⊑ D' semantically refuted: the canonical fresh grounding of D' is in
   [[D']]; if it is not in [[D]] we have a witness of non-containment
   (this is precisely the paper's proof of Prop. 3) *)
let semantic_check d d' =
  let hom = Ordering.leq d d' in
  if hom then
    (* every sampled completion of d' must be a completion of d *)
    List.for_all
      (fun (_, r) -> Semantics.mem r d)
      (Semantics.sample_completions d')
  else
    (* the fresh grounding of d' must escape [[d]] *)
    not (Semantics.mem (Instance.ground d') d)

let run () =
  Bench_util.banner
    "E17  Prop. 3 / Prop. 9: ordering = homomorphism, against the semantics";
  Bench_util.subsection "relational instances";
  Bench_util.row "%-8s %-12s %-14s %-12s" "facts" "pairs" "hom-holds" "verified";
  List.iter
    (fun facts ->
      let pairs = 25 in
      let holds = ref 0 and verified = ref 0 in
      for seed = 0 to pairs - 1 do
        let mk s =
          Codd.random_naive ~seed:s ~schema:[ ("R", 2) ] ~facts
            ~null_prob:0.4 ~domain:2 ~null_pool:2 ()
        in
        let d = mk (seed * 2) and d' = mk ((seed * 2) + 1) in
        if Ordering.leq d d' then incr holds;
        if semantic_check d d' then incr verified
      done;
      Bench_util.row "%-8d %-12d %-14d %-12d" facts pairs !holds !verified)
    [ 2; 3; 4 ];

  Bench_util.subsection "XML trees";
  let tree_semantic_check t t' =
    let hom = Tree_hom.leq t t' in
    if hom then Tree_hom.mem (Tree.ground t') t
    else not (Tree_hom.mem (Tree.ground t') t)
  in
  let pairs = 25 in
  let holds = ref 0 and verified = ref 0 in
  for seed = 0 to pairs - 1 do
    let mk s =
      let t =
        Tree.random ~seed:s
          ~labels:[ ("r", 0); ("a", 1); ("b", 1) ]
          ~max_depth:3 ~max_children:2 ~null_prob:0.4 ~domain:2 ()
      in
      { t with Tree.label = "r"; data = [||] }
    in
    let t = mk (seed * 2) and t' = mk ((seed * 2) + 1) in
    if Tree_hom.leq t t' then incr holds;
    if tree_semantic_check t t' then incr verified
  done;
  Bench_util.row "pairs %d: hom-holds %d, grounding-verified %d" pairs !holds
    !verified;
  Bench_util.row
    "\n(hom existence and the semantic definition agree on every pair:";
  Bench_util.row
    "the fresh grounding of D' is the universal witness, as in the proof)"

let micro () = ()
