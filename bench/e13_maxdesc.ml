(* E13 — Theorem 1, Lemma 1, Corollary 1 over the relational database
   domain: max-descriptions coincide with glbs; certain answers of monotone
   queries factor through finite bases; certain(Q, ↑x) = Q(x). *)

open Certdb_relational

module Rel_domain = struct
  type t = Instance.t

  let leq = Ordering.leq
  let is_complete = Instance.is_complete
  let pi_cpl = Instance.pi_cpl
end

module D = Certdb_order.Domain.Make (Rel_domain)
module P = Certdb_order.Preorder.Make (Rel_domain)

let random_pool ~seed ~size =
  List.init size (fun i ->
      Codd.random_naive ~seed:(seed + i) ~schema:[ ("R", 2) ] ~facts:2
        ~null_prob:0.4 ~domain:2 ~null_pool:1 ())

let run () =
  Bench_util.banner
    "E13  Theorem 1 / Lemma 1 / Corollary 1 on the relational domain";

  Bench_util.subsection
    "Theorem 1: max-descriptions = glbs (checked over random finite pools)";
  Bench_util.row "%-6s %-10s %-10s" "seed" "pool" "agrees";
  List.iter
    (fun seed ->
      let pool = random_pool ~seed ~size:8 in
      (* enrich the pool with the glb so that a glb exists in it *)
      let xs = [ List.nth pool 0; List.nth pool 1 ] in
      let pool = Glb.glb (List.nth xs 0) (List.nth xs 1) :: pool in
      Bench_util.row "%-6d %-10d %-10b" seed (List.length pool)
        (D.theorem1_agrees xs ~pool))
    [ 0; 10; 20; 30 ];

  Bench_util.subsection "retraction laws for pi_cpl";
  let pool = random_pool ~seed:100 ~size:10 in
  let pool = pool @ List.map Instance.ground pool in
  Bench_util.row "laws hold over a %d-element pool: %b" (List.length pool)
    (D.retraction_laws ~pool);

  Bench_util.subsection
    "Lemma 1 / certain answers through bases: glb of query images";
  (* query: project first column of R (as an instance mapping) *)
  let q d =
    Instance.fold
      (fun (f : Instance.fact) acc ->
        Instance.add_fact acc "P" [ f.args.(0) ])
      d Instance.empty
  in
  let monotone_checked =
    P.monotone q ~leq':Ordering.leq ~on:(random_pool ~seed:200 ~size:6)
  in
  Bench_util.row "projection query is monotone on the sample: %b"
    monotone_checked;

  Bench_util.subsection "Corollary 1: certain(Q, up x) = Q(x) for monotone Q";
  let oks = ref 0 and total = 5 in
  for seed = 0 to total - 1 do
    let x =
      Codd.random_naive ~seed:(300 + seed) ~schema:[ ("R", 2) ] ~facts:2
        ~null_prob:0.4 ~domain:2 ~null_pool:1 ()
    in
    (* pool: x, its groundings, and some supersets *)
    let pool =
      x
      :: List.map snd (Semantics.sample_completions x)
      @ [ Instance.union x (Instance.of_list [ ("R", [ [ Certdb_values.Value.int 7; Certdb_values.Value.int 8 ] ]) ]) ]
    in
    let up_x = List.filter (fun y -> Ordering.leq x y) pool in
    let images = List.map q up_x in
    let q_pool = List.map q pool in
    if
      List.for_all (fun im -> Ordering.leq (q x) im) images
      && List.for_all
           (fun lb -> not (Ordering.leq (q x) lb) || Ordering.leq lb (q x) || true)
           q_pool
    then begin
      (* full glb check via the preorder module over the image pool *)
      let module PQ = Certdb_order.Preorder.Make (Rel_domain) in
      if PQ.is_glb (q x) images ~pool:q_pool then incr oks
    end
  done;
  Bench_util.row "corollary 1 verified: %d/%d" !oks total

let micro () = ()
