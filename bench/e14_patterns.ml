(* E14 — tree patterns and XML-to-XML queries: naïve matching as certain
   answering (the pattern view of incompleteness the paper points to
   [4,7,8], plus the [16] query model).  Shape: naïve application agrees
   with the glb-over-completions reference on every instance, and scales
   polynomially while the reference pays the completion blow-up. *)

open Certdb_values
open Certdb_xml

let mk_catalog ~seed ~books ~null_prob =
  let st = Random.State.make [| seed |] in
  let book i =
    let id =
      if Random.State.float st 1.0 < null_prob then Value.fresh_null ()
      else Value.int i
    in
    let who =
      if Random.State.float st 1.0 < null_prob then Value.fresh_null ()
      else Value.str (Printf.sprintf "auth%d" (Random.State.int st 3))
    in
    Tree.node "book" ~data:[ id ] [ Tree.leaf "author" ~data:[ who ] ]
  in
  Tree.node "catalog" (List.init books book)

let query =
  Xml_query.make
    ~pattern:
      (Pattern.node ~label:"book" ~data:[ Pattern.Var "id" ]
         [ (Pattern.Child,
            Pattern.node ~label:"author" ~data:[ Pattern.Var "who" ] []) ])
    ~template:
      (Xml_query.template "entry" ~data:[ Pattern.Var "who" ]
         [ Xml_query.template "ref" ~data:[ Pattern.Var "id" ] [] ])

let run () =
  Bench_util.banner
    "E14  Tree patterns and XML-to-XML queries: naive = certain";
  Bench_util.row "%-6s %-7s %-7s %-8s %-12s %-12s" "seed" "books" "nulls"
    "agree" "naive(ms)" "enum(ms)";
  List.iter
    (fun (seed, books) ->
      let t = mk_catalog ~seed ~books ~null_prob:0.3 in
      let nulls = Value.Set.cardinal (Tree.nulls t) in
      if nulls <= 3 then begin
        let naive, naive_ms = Bench_util.time_ms (fun () -> Xml_query.apply query t) in
        let reference, enum_ms =
          Bench_util.time_ms (fun () -> Xml_query.certain_by_enumeration query t)
        in
        let agree =
          match reference with
          | Some r -> Tree_hom.equiv r naive
          | None -> false
        in
        Bench_util.row "%-6d %-7d %-7d %-8b %-12.2f %-12.2f" seed books nulls
          agree naive_ms enum_ms
      end
      else Bench_util.row "%-6d %-7d %-7d (skipped: too many nulls)" seed books nulls)
    [ (0, 2); (1, 2); (2, 3); (3, 3); (4, 4) ];

  Bench_util.subsection "pattern matching scaling (naive only)";
  Bench_util.row "%-7s %-12s %-12s" "books" "child(ms)" "descendant(ms)";
  List.iter
    (fun books ->
      let t = mk_catalog ~seed:9 ~books ~null_prob:0.2 in
      let p_child =
        Pattern.node ~label:"book"
          [ (Pattern.Child, Pattern.node ~label:"author" []) ]
      in
      let p_desc =
        Pattern.node ~label:"catalog"
          [ (Pattern.Descendant, Pattern.node ~label:"author" []) ]
      in
      let child_ms =
        Bench_util.time_ms_median (fun () -> ignore (Pattern.all_matches p_child t))
      in
      let desc_ms =
        Bench_util.time_ms_median (fun () -> ignore (Pattern.all_matches p_desc t))
      in
      Bench_util.row "%-7d %-12.3f %-12.3f" books child_ms desc_ms)
    [ 8; 16; 32; 64 ]

let micro () =
  let t = mk_catalog ~seed:3 ~books:16 ~null_prob:0.2 in
  Bench_util.micro
    [ ("e14/xml-query-apply-16", fun () -> ignore (Xml_query.apply query t)) ]
