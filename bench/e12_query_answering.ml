(* E12 — Theorem 7: certain answers for FO(S,∼).
   (a) existential positive sentences: naïve evaluation, agreeing with the
       complete-image reference;
   (b) existential sentences: coNP — the paper's 3-colorability reduction,
       where certain(ϕ0, D_G) = true iff G is not 3-colorable;
   (c) full FO is undecidable: no experiment, by design. *)

open Certdb_values
open Certdb_gdm
open Certdb_graph

(* D_G of the hardness proof: an a-labeled node with a fresh null per
   vertex, symmetric E between adjacent ones, plus one isolated b-node with
   attributes (1,2,3). *)
let dg_of_graph g =
  let db =
    List.fold_left
      (fun db v ->
        Gdb.add_node db ~node:v ~label:"a" ~data:[ Value.fresh_null () ])
      Gdb.empty (Digraph.vertices g)
  in
  let db =
    List.fold_left
      (fun db (x, y) ->
        Gdb.add_tuple (Gdb.add_tuple db "E" [ x; y ]) "E" [ y; x ])
      db (Digraph.edges g)
  in
  let b_id = 1 + List.fold_left max (-1) (Digraph.vertices g) in
  Gdb.add_node db ~node:b_id ~label:"b"
    ~data:[ Value.int 1; Value.int 2; Value.int 3 ]

(* ϕ0 = ψ → χ, rewritten in existential form ¬ψ ∨ χ:
   ψ: every a-node's attribute is among the b-node's attributes;
   χ: some edge joins equal attributes. *)
let phi0 =
  let open Logic in
  let among =
    disj [ EqAttr (1, "x", 1, "y"); EqAttr (1, "x", 2, "y"); EqAttr (1, "x", 3, "y") ]
  in
  Or
    ( Exists
        ( [ "x"; "y" ],
          conj [ Label ("a", "x"); Label ("b", "y"); Not among ] ),
      Exists
        ( [ "x"; "y" ],
          conj
            [ Label ("a", "x"); Label ("a", "y"); Rel ("E", [ "x"; "y" ]);
              EqAttr (1, "x", 1, "y") ] ) )

let three_colorable g = Graph_props.colorable_sym 3 g

let run () =
  Bench_util.banner "E12  Theorem 7: certain answers for FO(S,~)";
  Bench_util.subsection
    "(a) existential positive: naive evaluation = certain answers";
  Bench_util.row "%-6s %-8s %-8s %-8s" "seed" "naive" "certain" "agree";
  for seed = 0 to 5 do
    let st = Random.State.make [| seed |] in
    let db = ref Gdb.empty in
    for i = 0 to 3 do
      let data =
        [ (if Random.State.bool st then Value.fresh_null () else Value.int (Random.State.int st 2)) ]
      in
      db := Gdb.add_node !db ~node:i ~label:"a" ~data
    done;
    for i = 1 to 3 do
      db := Gdb.add_tuple !db "child" [ Random.State.int st i; i ]
    done;
    let f =
      Logic.Exists
        ( [ "x"; "y" ],
          Logic.And (Logic.Rel ("child", [ "x"; "y" ]), Logic.EqAttr (1, "x", 1, "y")) )
    in
    let naive = Query_answering.naive_holds !db f in
    let certain = Query_answering.certain_existential !db f in
    Bench_util.row "%-6d %-8b %-8b %-8b" seed naive certain (naive = certain)
  done;

  Bench_util.subsection
    "(b) existential with negation: certain(phi0, D_G) = G not 3-colorable";
  Bench_util.row "%-10s %-8s %-10s %-12s %-10s" "graph" "nodes" "certain"
    "not-3-col" "ms";
  List.iter
    (fun (name, g) ->
      let db = dg_of_graph g in
      let certain, ms =
        Bench_util.time_ms (fun () -> Query_answering.certain db phi0)
      in
      let reference = not (three_colorable g) in
      assert (certain = reference);
      Bench_util.row "%-10s %-8d %-10b %-12b %-10.1f" name (Digraph.size g)
        certain reference ms)
    [
      ("K3", Digraph.clique 3);
      ("P2", Digraph.path 2);
      ("K4", Digraph.clique 4);
    ];
  Bench_util.row
    "\n(the image-enumeration cost is exponential in the null count: the";
  Bench_util.row "coNP lower bound of Theorem 7(b) is visible in the timings)"

let micro () =
  let db = dg_of_graph (Digraph.clique 3) in
  Bench_util.micro
    [ ("e12/certain-phi0-K3", fun () -> ignore (Query_answering.certain db phi0)) ]
