(* E19 — the Engine.Batch domain pool: throughput of independent hom
   searches at 1 vs N worker domains, on the E5 task family (relational
   information ordering over random Codd pairs) and the E11 family
   (generic GDM membership on tree-shaped instances).  The answers and
   their order are identical at every job count; the speedup gauges land
   in the bench JSON (about 1.0 on a single-core host, >= 2 expected at
   --jobs 4 on multi-core CI). *)

open Certdb_relational
open Certdb_gdm
module Engine = Certdb_csp.Engine
module Obs = Certdb_obs.Obs

let e5_tasks n =
  List.init n (fun i ->
      let d =
        Codd.random ~seed:(2 * i) ~schema:[ ("R", 2) ] ~facts:24
          ~null_prob:0.4 ~domain:4 ()
      in
      let d' =
        Codd.random ~seed:((2 * i) + 1) ~schema:[ ("R", 2) ] ~facts:28
          ~null_prob:0.0 ~domain:4 ()
      in
      (d, d'))

let e11_tasks n =
  List.init n (fun i ->
      let d =
        Ggen.tree ~seed:i ~nodes:16 ~labels:[ "a"; "b" ] ~null_prob:0.4
          ~domain:3 ()
      in
      let d' =
        Gdb.ground
          (Ggen.tree ~seed:(i + 500) ~nodes:20 ~labels:[ "a"; "b" ]
             ~null_prob:0.0 ~domain:3 ())
      in
      (d, d'))

(* Per-task node budget: keeps the adversarial unsatisfiable instances of
   the family from dominating the batch; Unknown is a legitimate result
   and must be identical at every job count. *)
let limits = Engine.Limits.make ~nodes:200_000 ()

let solve_e5 jobs tasks =
  Engine.Batch.map ~jobs
    (fun (d, d') -> (Ordering.leq_b ~limits d d' :> Engine.decision))
    tasks

let solve_e11 jobs tasks =
  Engine.Batch.map ~jobs
    (fun (d, d') -> Membership.generic_leq_b ~limits d d')
    tasks

let decision_name = function
  | `True -> "true"
  | `False -> "false"
  | `Unknown _ -> "unknown"

let family name tasks solve =
  Bench_util.subsection
    (Printf.sprintf "%s family: %d independent budgeted searches" name
       (List.length tasks));
  let baseline = solve 1 tasks in
  let t1 = Bench_util.time_ms_median (fun () -> solve 1 tasks) in
  Bench_util.row "%-8s %-12s %-12s %-10s" "jobs" "wall(ms)" "speedup"
    "same-order";
  Bench_util.row "%-8d %-12.2f %-12.2f %-10s" 1 t1 1.0 "yes";
  List.iter
    (fun jobs ->
      let results = solve jobs tasks in
      let tn = Bench_util.time_ms_median (fun () -> solve jobs tasks) in
      let same = results = baseline in
      let speedup = t1 /. tn in
      Obs.set
        (Obs.gauge (Printf.sprintf "bench.batch.%s.speedup_j%d" name jobs))
        speedup;
      Bench_util.row "%-8d %-12.2f %-12.2f %-10s" jobs tn speedup
        (if same then "yes" else "NO");
      if not same then
        failwith
          (Printf.sprintf "E19: %s results diverge at --jobs %d" name jobs))
    [ 2; 4 ];
  let tally =
    List.fold_left
      (fun acc r ->
        let k = decision_name r in
        (k, 1 + Option.value ~default:0 (List.assoc_opt k acc))
        :: List.remove_assoc k acc)
      [] baseline
  in
  Bench_util.row "answers: %s"
    (String.concat ", "
       (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) tally))

let run () =
  Bench_util.banner
    "E19  Engine.Batch: domain-parallel throughput on E5/E11 families";
  Bench_util.row "recommended domain count: %d" (Engine.Batch.default_jobs ());
  family "e5" (e5_tasks 24) solve_e5;
  family "e11" (e11_tasks 16) solve_e11

let micro () =
  let tasks = e5_tasks 8 in
  Bench_util.micro
    [
      ("e19/batch-e5-j1", fun () -> ignore (solve_e5 1 tasks));
      ("e19/batch-e5-j4", fun () -> ignore (solve_e5 4 tasks));
    ]
