(* E23 — tracing overhead: the e22 service replay (cache on, explain
   never requested — the shipped default) with request-scoped tracing
   disabled vs enabled.  Every request still runs the full served path;
   the only difference is Trace's context bookkeeping and ring writes.

   Checked invariant (the bench fails on violation): the traced replay's
   median wall-clock is within 5% of the untraced baseline, plus a small
   absolute allowance that absorbs scheduler noise on short runs.  This
   is the issue's acceptance bar for leaving tracing on by default. *)

module Obs = Certdb_obs.Obs
module Trace = Certdb_obs.Trace

let runs = 5

let replay_wall ~enabled =
  Trace.set_enabled enabled;
  Bench_util.time_ms_median ~runs ~warmup:1 (fun () ->
      Trace.clear ();
      ignore (E22_service.replay ~cache:true))

let run () =
  Bench_util.banner "E23  Tracing overhead on the e22 service replay";
  Bench_util.row "%d requests per replay, median of %d runs, cache on"
    E22_service.requests runs;
  let was = Trace.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled was;
      Trace.clear ())
    (fun () ->
      let off = replay_wall ~enabled:false in
      let on = replay_wall ~enabled:true in
      let overhead_pct = (on -. off) /. off *. 100.0 in
      Bench_util.row "%-14s %-12s" "tracing" "wall(ms)";
      Bench_util.row "%-14s %-12.3f" "off" off;
      Bench_util.row "%-14s %-12.3f" "on" on;
      Bench_util.row "overhead: %+.2f%% (bar: <= 5%% + 0.5ms absolute)"
        overhead_pct;
      let budget = (off *. 1.05) +. 0.5 in
      if on > budget then
        failwith
          (Printf.sprintf
             "e23: traced replay %.3fms exceeds the overhead budget %.3fms \
              (untraced %.3fms)"
             on budget off))

let micro () =
  let work () = Sys.opaque_identity (Fun.id 42) in
  let span_on () =
    Trace.set_enabled true;
    ignore (Trace.with_span "e23.micro" work)
  in
  let span_off () =
    Trace.set_enabled false;
    ignore (Trace.with_span "e23.micro" work)
  in
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled true;
      Trace.clear ())
    (fun () ->
      Bench_util.micro
        [
          ("e23/span-traced", span_on); ("e23/span-untraced", span_off);
        ])
