(* E25 — serving under wire-level chaos: replay the e22 query stream
   through the supervised socket server while CERTDB_FAULT-style
   schedules drop, delay and truncate frames on both directions, with
   the retrying client doing the recovery.  Then an overload burst
   against a deliberately tiny pool exercises admission control.

   Checked invariants (the bench fails on violation):
   - zero lost requests: every request of the stream resolves Ok after
     bounded retries, despite ~1-in-7 reads and ~1-in-11 writes being
     perturbed;
   - zero duplicated or mismatched responses: each request id resolves
     exactly once, and every answer equals the fault-free in-process
     ground truth, request by request;
   - overload sheds, never hangs: with conns=1/queue=1 a concurrent
     burst is shed with retry_after_ms hints (a hint-less shed is a
     client-side hard error) and still completes via retries;
   - the server never dies: both servers drain cleanly on shutdown
     (their supervisor domains join without raising) and answer a final
     ping just before. *)

module Obs = Certdb_obs.Obs
module Fault = Certdb_obs.Fault
module Json = Obs.Json
module Server = Certdb_service.Server
module Supervisor = Certdb_service.Supervisor
module Client = Certdb_service.Client

let shards = 4

let sock_path tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "certdb-e25-%s-%d.sock" tag (Unix.getpid ()))

let fields_of line =
  match Json.of_string line with
  | Json.Obj kvs -> kvs
  | _ -> failwith "e25: request line is not an object"

(* fault-free in-process replay: the ground truth each chaos response
   must match *)
let expected_answers () =
  let server = Server.create ~config:(Server.Config.make ()) () in
  (match Server.load server ~name:"d" ~source:E22_service.instance_src with
  | Ok _ -> ()
  | Error m -> failwith ("e25: load failed: " ^ m));
  List.mapi
    (fun idx (_, line) ->
      let row, _ = Server.handle_line server ~idx line in
      match Json.member "status" row with
      | Some (Json.String "ok") -> E22_service.answer_of row
      | _ -> failwith ("e25: ground truth failed: " ^ Json.to_string row))
    E22_service.stream

let start_server ~config ~cache path =
  let server =
    Server.create
      ~config:(Server.Config.make ~cache_capacity:(if cache then 1024 else 0) ())
      ()
  in
  (match Server.load server ~name:"d" ~source:E22_service.instance_src with
  | Ok _ -> ()
  | Error m -> failwith ("e25: load failed: " ^ m));
  Domain.spawn (fun () -> Supervisor.run ~config server ~path)

let wait_ready path =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let probe =
    Client.connect
      ~config:(Client.Config.make ~request_timeout_ms:200.0 ~max_retries:0 ())
      ~path ()
  in
  let rec go () =
    match Client.ping probe with
    | Ok _ -> Client.close probe
    | Error m ->
      if Unix.gettimeofday () > deadline then
        failwith ("e25: server never became ready: " ^ m)
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

let shutdown_and_join path sup =
  let client =
    Client.connect
      ~config:(Client.Config.make ~request_timeout_ms:500.0 ~max_retries:3 ())
      ~path ()
  in
  (match Client.ping client with
  | Ok _ -> ()
  | Error m -> failwith ("e25: final ping failed: " ^ m));
  (* the shutdown response itself may be eaten by a write fault; the
     proof of a clean drain is the supervisor domain joining *)
  ignore (Client.request client [ ("op", Json.String "shutdown") ]);
  Client.close client;
  Domain.join sup

(* ---- phase 1: chaos replay ------------------------------------------- *)

let chaos_replay () =
  let path = sock_path "chaos" in
  let sup =
    start_server
      ~config:
        (Supervisor.Config.make ~conns:shards ~queue_capacity:32
           ~request_timeout_ms:10_000.0 ())
      ~cache:true path
  in
  wait_ready path;
  (* armed only now: the probe pings above stay clean, so readiness is
     not burned into the fault schedule *)
  let r =
    Fault.with_armed
    [ ("service.read", Fault.Every 7); ("service.write", Fault.Every 11) ]
    (fun () ->
      let indexed = List.mapi (fun i (_, line) -> (i, line)) E22_service.stream in
      let shard s =
        let client =
          Client.connect
            ~config:
              (Client.Config.make ~request_timeout_ms:250.0 ~max_retries:12
                 ~backoff_ms:5.0 ~jitter_seed:(s + 1) ())
            ~path ()
        in
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () ->
            List.filter_map
              (fun (i, line) ->
                if i mod shards <> s then None
                else
                  Some
                    ( i,
                      Client.request client
                        ~id:(Printf.sprintf "r%d" i)
                        (fields_of line) ))
              indexed)
      in
      let results =
        List.init shards (fun s -> Domain.spawn (fun () -> shard s))
        |> List.concat_map Domain.join
      in
      let expected = expected_answers () in
      let lost = ref 0 and mismatched = ref 0 in
      let seen = Hashtbl.create 512 in
      let duplicated = ref 0 in
      List.iter
        (fun (i, r) ->
          match r with
          | Error m ->
            incr lost;
            Bench_util.row "LOST r%d: %s" i m
          | Ok row ->
            let id = Printf.sprintf "r%d" i in
            (match Json.member "id" row with
            | Some (Json.String rid) when String.equal rid id -> ()
            | _ -> incr mismatched);
            if Hashtbl.mem seen id then incr duplicated
            else Hashtbl.add seen id ();
            let want = List.nth expected i in
            let got =
              match Json.member "status" row with
              | Some (Json.String "ok") -> E22_service.answer_of row
              | _ -> "<" ^ Json.to_string row ^ ">"
            in
            if not (String.equal got want) then begin
              incr mismatched;
              Bench_util.row "MISMATCH r%d: got %s, want %s" i got want
            end)
        results;
      (!lost, !duplicated, !mismatched, List.length results))
  in
  (* disarmed again: the drain below is not part of the chaos *)
  shutdown_and_join path sup;
  r

(* ---- phase 2: overload burst ----------------------------------------- *)

let burst_clients = 8
let burst_requests = 3

let overload_burst () =
  let path = sock_path "overload" in
  (* one worker, a queue of one, and a short idle deadline so a parked
     connection cannot monopolise the only worker: everything beyond
     that must be shed and must still complete via retries *)
  let sup =
    start_server
      ~config:
        (Supervisor.Config.make ~conns:1 ~queue_capacity:1
           ~request_timeout_ms:25.0 ~retry_after_ms:5.0 ())
      ~cache:false path
  in
  wait_ready path;
  let line =
    Json.to_string
      (Json.Obj
         [
           ("op", Json.String "query");
           ("db", Json.String "d");
           ("query", Json.String (E22_service.cycle 7 0));
         ])
  in
  let client c =
    let cl =
      Client.connect
        ~config:
          (Client.Config.make ~request_timeout_ms:3000.0 ~max_retries:25
             ~backoff_ms:5.0 ~max_backoff_ms:200.0 ~jitter_seed:(100 + c) ())
        ~path ()
    in
    Fun.protect
      ~finally:(fun () -> Client.close cl)
      (fun () ->
        List.init burst_requests (fun r ->
            Client.request cl
              ~id:(Printf.sprintf "b%d_%d" c r)
              (fields_of line)))
  in
  let results =
    List.init burst_clients (fun c -> Domain.spawn (fun () -> client c))
    |> List.concat_map Domain.join
  in
  let failed =
    List.filter_map (function Error m -> Some m | Ok _ -> None) results
  in
  shutdown_and_join path sup;
  (List.length results, failed)

(* ---- the experiment --------------------------------------------------- *)

let counter name = Obs.counter_value (Obs.counter name)

let run () =
  Bench_util.banner
    "E25  Robust serve: e22 replay under wire faults + overload burst";
  Bench_util.row
    "%d requests over %d shard clients; faults: service.read%%7, \
     service.write%%11 (drop/delay/truncate cycling)"
    (List.length E22_service.stream)
    shards;
  let lost, duplicated, mismatched, total = chaos_replay () in
  let retries = counter "service.client.retries" in
  Bench_util.row
    "chaos replay: %d/%d ok, %d retries, %d read faults, %d write faults"
    (total - lost) total retries
    (counter "fault.service.read.injected")
    (counter "fault.service.write.injected");
  if lost > 0 then failwith (Printf.sprintf "e25: %d requests lost" lost);
  if duplicated > 0 then
    failwith (Printf.sprintf "e25: %d duplicated response ids" duplicated);
  if mismatched > 0 then
    failwith (Printf.sprintf "e25: %d mismatched answers" mismatched);
  let burst_total, burst_failed = overload_burst () in
  let sheds = counter "service.server.shed" in
  let overloaded = counter "service.client.overloaded" in
  Bench_util.row
    "overload burst: %d/%d ok through conns=1/queue=1; %d sheds \
     (every one carried retry_after_ms), %d seen by clients"
    (burst_total - List.length burst_failed)
    burst_total sheds overloaded;
  (match burst_failed with
  | [] -> ()
  | m :: _ ->
    failwith
      (Printf.sprintf "e25: %d burst requests failed (first: %s)"
         (List.length burst_failed) m));
  if sheds = 0 then
    failwith "e25: overload burst shed nothing - admission control untested";
  if sheds > 2000 then
    failwith (Printf.sprintf "e25: shed rate unbounded (%d sheds)" sheds);
  (* machine-readable summary for the CI chaos assertions *)
  Obs.add (Obs.counter "bench.robust.lost") lost;
  Obs.add (Obs.counter "bench.robust.duplicated") duplicated;
  Obs.add (Obs.counter "bench.robust.mismatched") mismatched;
  Obs.add (Obs.counter "bench.robust.sheds") sheds;
  Obs.add (Obs.counter "bench.robust.retries") retries;
  Bench_util.row
    "zero lost, zero duplicated, zero mismatched over %d chaos + %d burst \
     requests"
    total burst_total
