(* E6 — Prop. 8: over Codd databases, D ⊑cwa D' iff D ⪯ D' and ⪯⁻¹
   satisfies Hall's condition.  Shape: full agreement between the
   onto-homomorphism search and the ⪯+Hopcroft–Karp characterization, with
   the matching-based test staying polynomial while the onto search
   degrades on larger instances. *)

open Certdb_relational

let run () =
  Bench_util.banner "E6  Prop. 8: CWA ordering = hoare-lift + Hall (Codd)";
  let trials = 80 in
  Bench_util.row "%-8s %-10s %-10s %-8s" "facts" "agree" "cwa-true" "trials";
  List.iter
    (fun facts ->
      let agree = ref 0 and positives = ref 0 in
      for seed = 0 to trials - 1 do
        let d =
          Codd.random ~seed:(seed * 3) ~schema:[ ("R", 2) ] ~facts
            ~null_prob:0.6 ~domain:2 ()
        in
        let d' =
          Codd.random ~seed:((seed * 3) + 1) ~schema:[ ("R", 2) ] ~facts
            ~null_prob:0.0 ~domain:2 ()
        in
        let via_onto = Ordering.cwa_leq d d' in
        let via_hall = Ordering.cwa_leq_codd d d' in
        if via_onto = via_hall then incr agree;
        if via_hall then incr positives
      done;
      Bench_util.row "%-8d %-10d %-10d %-8d" facts !agree !positives trials)
    [ 2; 3; 4; 5 ];

  Bench_util.subsection "scaling: onto-hom search vs Hopcroft-Karp";
  Bench_util.row "%-8s %-14s %-14s" "facts" "onto-hom(ms)" "hall(ms)";
  List.iter
    (fun facts ->
      let d =
        Codd.random ~seed:21 ~schema:[ ("R", 2) ] ~facts ~null_prob:0.5
          ~domain:3 ()
      in
      let d' =
        Codd.random ~seed:22 ~schema:[ ("R", 2) ] ~facts ~null_prob:0.0
          ~domain:3 ()
      in
      let onto_ms =
        Bench_util.time_ms_median (fun () -> ignore (Ordering.cwa_leq d d'))
      in
      let hall_ms =
        Bench_util.time_ms_median (fun () -> ignore (Ordering.cwa_leq_codd d d'))
      in
      Bench_util.row "%-8d %-14.3f %-14.3f" facts onto_ms hall_ms)
    [ 4; 6; 8; 10; 12 ]

let micro () =
  let d =
    Codd.random ~seed:31 ~schema:[ ("R", 2) ] ~facts:10 ~null_prob:0.5
      ~domain:3 ()
  in
  let d' =
    Codd.random ~seed:32 ~schema:[ ("R", 2) ] ~facts:10 ~null_prob:0.0
      ~domain:3 ()
  in
  Bench_util.micro
    [
      ("e6/cwa-onto-10", fun () -> ignore (Ordering.cwa_leq d d'));
      ("e6/cwa-hall-10", fun () -> ignore (Ordering.cwa_leq_codd d d'));
    ]
