(* E18 — the paper's §1 narrative, executable: the 1990s powerdomain-lift
   orderings [9,33,34,36] are adequate for (Codd-style) nested relations,
   but the same recursive-lift recipe falls short for XML, where data
   values couple subtrees through repeated nulls — the gap the
   homomorphism-based ordering closes.

   Shape: on flat Codd tables the lift equals the information ordering
   (Prop. 4); on nested Codd-style values it behaves consistently; on
   trees with repeated nulls the recursive lift accepts pairs the semantic
   (homomorphism) ordering must reject. *)

open Certdb_values
open Certdb_relational
open Certdb_xml

(* the recursive Hoare-style lift on data trees, as a 1990s theory would
   define it: labels equal, data dominated positionwise, children lifted
   set-wise — no global consistency of null assignments *)
let rec tree_lift (t : Tree.t) (t' : Tree.t) =
  String.equal t.label t'.label
  && Ordering.tuple_leq t.data t'.data
  && List.for_all
       (fun c -> List.exists (fun c' -> tree_lift c c') t'.children)
       t.children

let run () =
  Bench_util.banner
    "E18  The 1990s orderings: adequate for nested relations, short for XML";

  Bench_util.subsection
    "flat Codd tables: the lift IS the information ordering (Prop. 4)";
  let agree = ref 0 and trials = 40 in
  for seed = 0 to trials - 1 do
    let mk s =
      Codd.random ~seed:s ~schema:[ ("R", 2) ] ~facts:3 ~null_prob:0.4
        ~domain:3 ()
    in
    let d = mk (seed * 2) and d' = mk ((seed * 2) + 1) in
    if
      Ordering.hoare_leq d d'
      = Certdb_nested.Nested.leq_owa
          (Certdb_nested.Nested.of_instance_relation d "R")
          (Certdb_nested.Nested.of_instance_relation d' "R")
      && Ordering.hoare_leq d d' = Ordering.leq d d'
    then incr agree
  done;
  Bench_util.row "lift = hoare = hom ordering on Codd tables: %d/%d" !agree
    trials;

  Bench_util.subsection
    "nested values: glbs by the lifted product construction";
  let dept name emps =
    [| Certdb_nested.Nested.Atom (Value.str name);
       Certdb_nested.Nested.set emps |]
  in
  let a v = Certdb_nested.Nested.Atom v in
  let v1 =
    Certdb_nested.Nested.set
      [ dept "cs" [ [| a (Value.int 1) |]; [| a (Value.int 2) |] ] ]
  in
  let v2 =
    Certdb_nested.Nested.set
      [ dept "cs" [ [| a (Value.int 1) |]; [| a (Value.int 3) |] ] ]
  in
  (match Certdb_nested.Nested.glb v1 v2 with
  | Some g ->
    Bench_util.row "glb of two department views: %s"
      (Format.asprintf "%a" Certdb_nested.Nested.pp g);
    Bench_util.row "lower bound of both: %b"
      (Certdb_nested.Nested.leq_owa g v1 && Certdb_nested.Nested.leq_owa g v2)
  | None -> Bench_util.row "unexpected: no glb");

  Bench_util.subsection
    "XML: the recursive lift over-approximates once nulls repeat";
  let n = Value.fresh_null () in
  (* a(⊥)[b(⊥)]: the two occurrences promise equality *)
  let t = Tree.node "a" ~data:[ n ] [ Tree.leaf "b" ~data:[ n ] ] in
  let t' = Tree.node "a" ~data:[ Value.int 1 ] [ Tree.leaf "b" ~data:[ Value.int 2 ] ] in
  Bench_util.row "1990s lift accepts a(x)[b(x)] <= a(1)[b(2)]:   %b"
    (tree_lift t t');
  Bench_util.row "homomorphism ordering rejects it:             %b"
    (not (Tree_hom.leq t t'));
  (* systematic divergence: take a random tree with ≥ 2 nulls, reuse one
     null for all of them, and compare against the grounding of the
     original (distinct constants per occurrence): the lift accepts every
     such pair, homomorphisms must reject them all *)
  let divergences = ref 0 and applicable = ref 0 and pairs = 40 in
  for seed = 0 to pairs - 1 do
    let src0 =
      let tr =
        Tree.random ~seed:(seed * 2)
          ~labels:[ ("r", 1); ("a", 1); ("b", 1) ]
          ~max_depth:3 ~max_children:2 ~null_prob:0.7 ~domain:2 ()
      in
      { tr with Tree.label = "r" }
    in
    match Value.Set.elements (Tree.nulls src0) with
    | first :: (_ :: _ as rest) ->
      incr applicable;
      let reuse =
        List.fold_left
          (fun acc other -> Valuation.bind acc other first)
          Valuation.empty rest
      in
      let reused = Tree.apply reuse src0 in
      let tgt = Tree.ground src0 in
      if tree_lift reused tgt && not (Tree_hom.leq reused tgt) then
        incr divergences
    | _ -> ()
  done;
  let pairs = !applicable in
  Bench_util.row
    "random pairs where the lift accepts but homomorphisms reject: %d/%d"
    !divergences pairs;
  Bench_util.row
    "\n(the lift never sees that repeated nulls promise equal values:";
  Bench_util.row
    "this is why the paper replaces it with the semantic ordering)"

let micro () = ()
