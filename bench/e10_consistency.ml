(* E10 — Prop. 11: the consistency problem Cons(ϕ).
   Shape: the ∃* case is input-independent (constant-time per fixed ϕ);
   the ∃*∀ case solved by hom-into-K3 agrees exactly with reference
   3-colorability, and its cost grows with the graph (NP-hardness). *)

open Certdb_csp
open Certdb_gdm
open Certdb_graph
open Certdb_consistency

let graph_schema = Gschema.make ~alphabet:[ ("v", 0) ] ~sigma:[ ("E", 2) ]

let gdb_of_undirected g =
  let db =
    List.fold_left
      (fun db v -> Gdb.add_node db ~node:v ~label:"v" ~data:[])
      Gdb.empty (Digraph.vertices g)
  in
  List.fold_left
    (fun db (x, y) ->
      Gdb.add_tuple (Gdb.add_tuple db "E" [ x; y ]) "E" [ y; x ])
    db (Digraph.edges g)

let k3 () =
  let s = Digraph.to_structure (Digraph.clique 3) in
  List.fold_left
    (fun acc v -> Structure.add_node ~label:"v" acc v)
    s (Structure.nodes s)

let three_colorable g = Graph_props.colorable_sym 3 g

let run () =
  Bench_util.banner "E10  Prop. 11: the consistency problem Cons(phi)";
  Bench_util.subsection "∃* conditions: decided by satisfiability alone";
  let sat_f = Logic.Exists ([ "x"; "y" ], Logic.Rel ("E", [ "x"; "y" ])) in
  let unsat_f =
    Logic.Exists
      ([ "x" ], Logic.And (Logic.Label ("v", "x"), Logic.Not (Logic.Label ("v", "x"))))
  in
  let _, t_sat =
    Bench_util.time_ms (fun () -> Cons.cons_existential ~schema:graph_schema sat_f)
  in
  Bench_util.row "phi = 'some edge':      consistent = %b   (%.2f ms)"
    (Cons.cons_existential ~schema:graph_schema sat_f)
    t_sat;
  Bench_util.row "phi = 'v and not v':    consistent = %b"
    (Cons.cons_existential ~schema:graph_schema unsat_f);

  Bench_util.subsection
    "∃*∀ condition (K3 description): Cons = 3-colorability";
  Bench_util.row "%-10s %-8s %-8s %-10s %-10s %-10s" "graph" "nodes"
    "edges" "cons" "3-col" "ms";
  let named_graphs =
    [
      ("C5", Digraph.cycle 5);
      ("K3", Digraph.clique 3);
      ("K4", Digraph.clique 4);
      ("grid3x3", Digraph.grid 3 3);
      ("rnd8", Digraph.random ~seed:3 ~vertices:8 ~edge_prob:0.35 ());
      ("rnd10", Digraph.random ~seed:4 ~vertices:10 ~edge_prob:0.3 ());
    ]
  in
  List.iter
    (fun (name, g) ->
      let db = gdb_of_undirected g in
      let cons, ms =
        Bench_util.time_ms (fun () -> Cons.cons_hom_into ~target:(k3 ()) db)
      in
      let reference = three_colorable g in
      assert (cons = reference);
      Bench_util.row "%-10s %-8d %-8d %-10b %-10b %-10.2f" name
        (Digraph.size g) (Digraph.edge_count g) cons reference ms)
    named_graphs;

  Bench_util.subsection
    "the generic bounded-model search agrees (tiny instances)";
  let phi = Cons.three_colorability_condition () in
  List.iter
    (fun (name, g) ->
      let db = gdb_of_undirected g in
      let cons, ms =
        Bench_util.time_ms (fun () ->
            Cons.cons_bounded ~schema:graph_schema ~size_bound:3 phi db)
      in
      Bench_util.row "%-10s bounded-search cons = %-6b (%.1f ms)" name cons ms)
    [ ("K3", Digraph.clique 3); ("K4", Digraph.clique 4) ]

let micro () =
  let db = gdb_of_undirected (Digraph.cycle 7) in
  Bench_util.micro
    [ ("e10/cons-hom-into-K3-C7", fun () -> ignore (Cons.cons_hom_into ~target:(k3 ()) db)) ]
