(* E4 — Theorem 3: the recursive family {C_{2^m}} of directed cycles has
   no glb.  The executable content of the proof:

   1. the chain P1 < P2 < ... < C_{2^m} < ... < C_4 < C_2 holds;
   2. every path P_n is a lower bound of the family, and P_{n+1} is a
      strictly greater one — so no acyclic candidate can be a glb;
   3. any candidate with a cycle of length k has no homomorphism into
      C_{2^m} once 2^m > k — so it is not even a lower bound. *)

open Certdb_graph

let run () =
  Bench_util.banner
    "E4  Theorem 3: the family {C_2^m} of directed cycles has no glb";
  let max_m = 6 in
  let family = List.init max_m (fun i -> (i + 1, Digraph.cycle (1 lsl (i + 1)))) in

  Bench_util.subsection "1. the chain C_{2^m} < C_{2^(m-1)}";
  Bench_util.row "%-14s %-14s %-9s %-9s" "lower" "higher" "hom->" "hom<-";
  List.iter
    (fun m ->
      let big = Digraph.cycle (1 lsl m) and small = Digraph.cycle (1 lsl (m - 1)) in
      Bench_util.row "%-14s %-14s %-9b %-9b"
        (Printf.sprintf "C_%d" (1 lsl m))
        (Printf.sprintf "C_%d" (1 lsl (m - 1)))
        (Graph_hom.leq big small) (Graph_hom.leq small big))
    (List.init (max_m - 1) (fun i -> i + 2));

  Bench_util.subsection "2. paths are a strictly increasing chain of lower bounds";
  Bench_util.row "%-6s %-22s %-22s" "n" "P_n lower bound?" "P_n < P_{n+1}?";
  List.iter
    (fun n ->
      let p = Digraph.path n in
      let is_lb =
        List.for_all (fun (_, c) -> Graph_hom.leq p c) family
      in
      let strict = Graph_hom.strictly_less p (Digraph.path (n + 1)) in
      Bench_util.row "%-6d %-22b %-22b" n is_lb strict)
    [ 1; 2; 3; 4; 5; 6 ];

  Bench_util.subsection
    "3. cyclic candidates are not lower bounds (smallest cycle k blocks C_{2^m} with 2^m > k)";
  Bench_util.row "%-14s %-18s %-10s" "candidate" "fails against" "hom?";
  List.iter
    (fun k ->
      let cand = Digraph.cycle k in
      (* the first family member longer than k *)
      let m = 1 + int_of_float (Float.log2 (float_of_int k)) in
      let blocker = Digraph.cycle (1 lsl (max m 1)) in
      Bench_util.row "%-14s %-18s %-10b"
        (Printf.sprintf "C_%d" k)
        (Printf.sprintf "C_%d" (1 lsl (max m 1)))
        (Graph_hom.leq cand blocker))
    [ 2; 3; 4; 6; 8 ];
  Bench_util.row
    "\nno candidate can be a glb: acyclic ones are dominated by a longer path,";
  Bench_util.row "cyclic ones are not lower bounds at all.";

  Bench_util.subsection
    "the Dedekind-MacNeille engine of the proof: completions of finite fragments";
  (* Theorem 3's first part argues by cardinality of the completion; on
     finite fragments of the path/cycle chain the completion is computable
     and already adds cuts for the missing bounds *)
  Bench_util.row "%-30s %-10s %-10s %-10s" "fragment" "elements" "cuts"
    "lattice";
  List.iter
    (fun (name, graphs) ->
      let arr = Array.of_list graphs in
      let leq i j = Graph_hom.leq arr.(i) arr.(j) in
      let completion =
        Certdb_order.Completion.make ~size:(Array.length arr) ~leq
      in
      Bench_util.row "%-30s %-10d %-10d %-10b" name (Array.length arr)
        (Certdb_order.Completion.cardinal completion)
        (Certdb_order.Completion.is_lattice completion))
    [
      ( "P1..P4 + C16,C8,C4,C2",
        List.map Digraph.path [ 1; 2; 3; 4 ]
        @ List.map Digraph.cycle [ 16; 8; 4; 2 ] );
      ( "antichain C3,C4,C5",
        List.map Digraph.cycle [ 3; 4; 5 ] );
    ];

  Bench_util.subsection "glbs of pairs DO exist: core(C_a x C_b) = C_lcm(a,b)";
  Bench_util.row "%-6s %-6s %-14s %-9s" "a" "b" "core size" "= C_lcm?";
  List.iter
    (fun (a, b) ->
      let g = Graph_core.glb (Digraph.cycle a) (Digraph.cycle b) in
      let rec gcd x y = if y = 0 then x else gcd y (x mod y) in
      let lcm = a * b / gcd a b in
      Bench_util.row "%-6d %-6d %-14d %-9b" a b (Digraph.size g)
        (Graph_hom.equiv g (Digraph.cycle lcm)))
    [ (2, 3); (4, 6); (4, 8); (3, 5) ]

let micro () =
  Bench_util.micro
    [
      ( "e4/hom-C32-to-C16",
        fun () ->
          ignore (Graph_hom.leq (Digraph.cycle 32) (Digraph.cycle 16)) );
      ( "e4/core-C4xC6",
        fun () ->
          ignore (Graph_core.glb (Digraph.cycle 4) (Digraph.cycle 6)) );
    ]
