(* E26 — constraint certificates vs completion enumeration.  The
   Badia–Lemire FD grades and the independence-atom product test are
   polynomial certificate checks; the semantic ground truth quantifies
   over every completion of the nulls.  Three instance families scale
   the null budget up to the brute-force oracle's practical limit; every
   graded verdict is cross-checked against the oracle, and on the
   largest (null-densest) family the certificate route must beat
   completion enumeration by at least 10x — the floor is asserted, and
   published as the bench.certs.{fd,independence}_speedup gauges in the
   --json record. *)

module Codd = Certdb_relational.Codd
module Fd = Certdb_analysis.Fd
module Independence = Certdb_analysis.Independence
module Obs = Certdb_obs.Obs

type family = {
  name : string;
  arity : int;
  facts : int;
  null_prob : float;
  null_pool : int;
  count : int; (* instances per family *)
}

(* ordered by null budget: the last family is the asserted one *)
let families =
  [
    { name = "narrow-sparse"; arity = 2; facts = 5; null_prob = 0.3;
      null_pool = 2; count = 30 };
    { name = "narrow-dense"; arity = 2; facts = 7; null_prob = 0.6;
      null_pool = 3; count = 30 };
    { name = "wide-dense"; arity = 3; facts = 8; null_prob = 0.6;
      null_pool = 5; count = 12 };
  ]

let instances f =
  List.init f.count (fun i ->
      Codd.random_naive ~seed:(0xe26 + i) ~schema:[ ("R", f.arity) ]
        ~facts:f.facts ~null_prob:f.null_prob ~domain:3
        ~null_pool:f.null_pool ())

(* one FD per column: column i determines its cyclic successor *)
let fds_for arity =
  List.init arity (fun i ->
      Fd.fd ~rel:"R" ~lhs:[ i ] ~rhs:[ (i + 1) mod arity ])

let atom_for _arity = Independence.atom ~rel:"R" ~x:[ 0 ] ~y:[ 1 ]

let grade_mix grades =
  let count g = List.length (List.filter (fun g' -> g' = g) grades) in
  Printf.sprintf "%d/%d/%d" (count Fd.Certain) (count Fd.Possible)
    (count Fd.Violated)

(* median wall time of [checks ()], guarded for the µs-scale certificate
   runs so the speedup ratio stays finite *)
let timed checks = max 1e-4 (Bench_util.time_ms_median checks)

let run () =
  Bench_util.banner
    "E26  Constraint certificates: graded FD/independence checks vs \
     completion enumeration";
  Bench_util.row "%-14s %-13s %-7s %-12s %-12s %-10s %-9s" "family" "check"
    "runs" "cert(ms)" "enum(ms)" "speedup" "c/p/v";
  let last_fd_speedup = ref 0.0 and last_ind_speedup = ref 0.0 in
  List.iter
    (fun f ->
      let ds = instances f in
      (* FDs: verdict grade must equal the oracle's on every check *)
      let fds = fds_for f.arity in
      let pairs = List.concat_map (fun d -> List.map (fun x -> (d, x)) fds) ds in
      let grades =
        List.map
          (fun (d, x) ->
            let g = Fd.grade (Fd.check d x) in
            let oracle = Fd.brute_force d x in
            if g <> oracle then
              failwith
                (Printf.sprintf
                   "E26: Fd.check graded %s %s but enumeration says %s"
                   (Fd.to_string x) (Fd.grade_name g) (Fd.grade_name oracle));
            g)
          pairs
      in
      let cert = timed (fun () -> List.iter (fun (d, x) -> ignore (Fd.check d x)) pairs) in
      let enum = timed (fun () -> List.iter (fun (d, x) -> ignore (Fd.brute_force d x)) pairs) in
      last_fd_speedup := enum /. cert;
      Bench_util.row "%-14s %-13s %-7d %-12.3f %-12.3f %-10.1f %-9s" f.name
        "fd" (List.length pairs) cert enum !last_fd_speedup (grade_mix grades);
      (* independence: same protocol, one atom per family *)
      let a = atom_for f.arity in
      let grades =
        List.map
          (fun d ->
            let g = Fd.grade (Independence.check d a) in
            let oracle = Independence.brute_force d a in
            if g <> oracle then
              failwith
                (Printf.sprintf
                   "E26: Independence.check graded %s %s but enumeration \
                    says %s"
                   (Independence.to_string a) (Fd.grade_name g)
                   (Fd.grade_name oracle));
            g)
          ds
      in
      let cert = timed (fun () -> List.iter (fun d -> ignore (Independence.check d a)) ds) in
      let enum = timed (fun () -> List.iter (fun d -> ignore (Independence.brute_force d a)) ds) in
      last_ind_speedup := enum /. cert;
      Bench_util.row "%-14s %-13s %-7d %-12.3f %-12.3f %-10.1f %-9s" f.name
        "independence" (List.length ds) cert enum !last_ind_speedup
        (grade_mix grades))
    families;
  Obs.set Obs.(gauge "bench.certs.fd_speedup") !last_fd_speedup;
  Obs.set Obs.(gauge "bench.certs.independence_speedup") !last_ind_speedup;
  Bench_util.row
    "\nlargest family (wide-dense) speedups: fd %.1fx, independence %.1fx \
     (floor 10x)"
    !last_fd_speedup !last_ind_speedup;
  if !last_fd_speedup < 10.0 || !last_ind_speedup < 10.0 then
    failwith
      "E26: certificate checking fell under the 10x floor over completion \
       enumeration on the largest family"

let micro () =
  let f = List.nth families 2 in
  let d = List.hd (instances f) in
  let x = List.hd (fds_for f.arity) in
  let a = atom_for f.arity in
  Bench_util.micro
    [
      ("e26/fd-cert", fun () -> ignore (Fd.check d x));
      ("e26/fd-enum", fun () -> ignore (Fd.brute_force d x));
      ("e26/ind-cert", fun () -> ignore (Independence.check d a));
      ("e26/ind-enum", fun () -> ignore (Independence.brute_force d a));
    ]
