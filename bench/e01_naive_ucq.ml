(* E1 — Naïve evaluation computes certain answers for UCQs
   (Imieliński–Lipski; reproved via Prop. 7 + Theorem 2).

   Shape to reproduce: naïve evaluation agrees with the enumeration
   reference on every instance, and is exponentially cheaper as the number
   of nulls grows (the enumeration pays m^k completions). *)

open Certdb_relational
open Certdb_query

let v = Fo.var

let queries =
  [
    ("atoms", Cq.make ~head:[ "x" ] [ ("R", [ v "x"; v "y" ]) ]);
    ( "join",
      Cq.make ~head:[ "x"; "z" ]
        [ ("R", [ v "x"; v "y" ]); ("R", [ v "y"; v "z" ]) ] );
    ( "cycle",
      Cq.make ~head:[ "x" ]
        [ ("R", [ v "x"; v "y" ]); ("R", [ v "y"; v "x" ]) ] );
  ]

let run () =
  Bench_util.banner
    "E1  Naive evaluation = certain answers for UCQs (IL84; Prop. 7 + Thm 2)";
  Bench_util.row "%-8s %-10s %-6s %-8s %-12s %-12s %-8s" "query" "facts"
    "nulls" "agree" "naive(ms)" "enum(ms)" "worlds";
  List.iter
    (fun (qname, q) ->
      let u = Ucq.make [ q ] in
      List.iter
        (fun (facts, null_prob) ->
          let agree = ref 0 and trials = 5 in
          let naive_ms = ref 0. and enum_ms = ref 0. in
          let nulls_seen = ref 0 and worlds = ref 0 in
          for seed = 0 to trials - 1 do
            let d =
              Codd.random_naive ~seed:(seed + (facts * 100)) ~schema:[ ("R", 2) ]
                ~facts ~null_prob ~domain:3 ~null_pool:2 ()
            in
            nulls_seen := !nulls_seen + Certdb_values.Value.Set.cardinal (Instance.nulls d);
            let naive, t1 =
              Bench_util.time_ms (fun () -> Certain.naive_eval_ucq u d)
            in
            let reference, t2 =
              Bench_util.time_ms (fun () ->
                  Semantics.certain_answers_by_enumeration
                    (fun r -> Ucq.answers u r)
                    d)
            in
            worlds := !worlds + List.length (Semantics.sample_completions d);
            naive_ms := !naive_ms +. t1;
            enum_ms := !enum_ms +. t2;
            if Instance.equal naive reference then incr agree
          done;
          Bench_util.row "%-8s %-10d %-6d %d/%d      %-12.3f %-12.3f %-8d"
            qname facts (!nulls_seen / trials) !agree trials
            (!naive_ms /. float_of_int trials)
            (!enum_ms /. float_of_int trials)
            (!worlds / trials))
        [ (3, 0.2); (3, 0.5); (4, 0.3); (5, 0.3) ])
    queries;
  (* scaling of naive evaluation alone: correctness is guaranteed by the
     theorem, so larger instances need no reference run *)
  Bench_util.subsection "naive evaluation scaling (reference not needed)";
  Bench_util.row "%-8s %-10s %-12s" "query" "facts" "naive(ms)";
  List.iter
    (fun facts ->
      let q = List.assoc "join" queries in
      let u = Ucq.make [ q ] in
      let d =
        Codd.random_naive ~seed:99 ~schema:[ ("R", 2) ] ~facts
          ~null_prob:0.3 ~domain:8 ~null_pool:4 ()
      in
      let ms =
        Bench_util.time_ms_median (fun () ->
            ignore (Certain.naive_eval_ucq u d))
      in
      Bench_util.row "%-8s %-10d %-12.3f" "join" facts ms)
    [ 8; 16; 32; 64 ]

let micro () =
  let d =
    Codd.random_naive ~seed:7 ~schema:[ ("R", 2) ] ~facts:16 ~null_prob:0.3
      ~domain:5 ~null_pool:3 ()
  in
  let q = List.assoc "join" queries in
  let u = Ucq.make [ q ] in
  Bench_util.micro
    [
      ("e1/naive-eval-join-16-facts", fun () -> ignore (Certain.naive_eval_ucq u d));
    ]
