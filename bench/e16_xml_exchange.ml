(* E16 — XML data exchange and the loss of canonicity (Section 5.3 +
   Prop. 10): relational exchange always has a canonical (lub) solution;
   tree-shaped targets can have incomparable solutions with no universal
   one.  Shape: the relational control finds a universal solution at every
   size; the XML instance exhibits two incomparable solutions. *)

open Certdb_values
open Certdb_relational
open Certdb_gdm
open Certdb_exchange
open Certdb_xml

let run () =
  Bench_util.banner
    "E16  XML exchange: universal solutions exist for relations, not for trees";

  Bench_util.subsection "relational control: canonical solution is universal";
  let nx = Value.null 8801 and ny = Value.null 8802 and nz = Value.null 8803 in
  let m =
    [
      Mapping.relational_rule
        ~body:(Instance.of_list [ ("S", [ [ nx; ny ] ]) ])
        ~head:(Instance.of_list [ ("T", [ [ nx; nz ]; [ nz; ny ] ]) ]);
    ]
  in
  Bench_util.row "%-8s %-10s %-10s" "facts" "solution" "universal";
  List.iter
    (fun facts ->
      let source =
        Instance.of_list
          [ ("S", List.init facts (fun i -> [ Value.int i; Value.int (i + 100) ])) ]
      in
      let gdm_src = Encode.of_instance source in
      let canonical = Universal.canonical_solution m gdm_src in
      let samples =
        Solution.random_solutions m ~source:gdm_src ~seed:facts ~count:3
      in
      Bench_util.row "%-8d %-10b %-10b" facts
        (Solution.is_solution m ~source:gdm_src canonical)
        (Solution.is_universal_vs m ~source:gdm_src canonical
           ~solutions:samples))
    [ 2; 4; 8 ];

  Bench_util.subsection "tree targets: the Prop. 10 mapping";
  let mapping =
    [
      Xml_exchange.rule ~body:(Tree.leaf "src")
        ~head:(Tree.node "a" [ Tree.leaf "b" ]);
      Xml_exchange.rule ~body:(Tree.leaf "src")
        ~head:(Tree.node "a" [ Tree.leaf "c" ]);
    ]
  in
  let source = Tree.leaf "src" in
  let s1 = Tree.node "a" [ Tree.leaf "b"; Tree.leaf "c" ] in
  let s2 =
    Tree.node "d"
      [ Tree.node "a" [ Tree.leaf "b" ]; Tree.node "a" [ Tree.leaf "c" ] ]
  in
  Bench_util.row "s1 = a[b;c] is a solution:            %b"
    (Xml_exchange.is_solution mapping ~source s1);
  Bench_util.row "s2 = d[a[b];a[c]] is a solution:      %b"
    (Xml_exchange.is_solution mapping ~source s2);
  Bench_util.row "s1 and s2 are hom-incomparable:       %b"
    (Xml_exchange.incomparable_solutions mapping ~source s1 s2);
  Bench_util.row "s1 universal against {s2}:            %b"
    (Xml_exchange.is_universal_vs mapping ~source s1 ~solutions:[ s2 ]);
  Bench_util.row "s2 universal against {s1}:            %b"
    (Xml_exchange.is_universal_vs mapping ~source s2 ~solutions:[ s1 ]);
  Bench_util.row
    "\nno tree solution maps into both: the choice of solution is ad hoc,";
  Bench_util.row "exactly the loss of canonicity the paper explains."

let micro () = ()
