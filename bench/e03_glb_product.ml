(* E3 — Prop. 5: the ⊗-product computes glbs of naïve tables; the size of
   ∧X for a family of k tables with m tuples each is m^k ≤ (‖X‖/k)^k, and
   even the core of the glb grows exponentially in k (adapted from [16]).

   Also the eager-vs-lazy core ablation called out in DESIGN.md. *)

open Certdb_values
open Certdb_relational

(* tables whose glb has a large core: facts R(c_i, ⊥) with distinct
   constants per table force the product to retain many combinations *)
let table ~offset ~tuples =
  let n () = Value.fresh_null () in
  Instance.of_list
    [ ("R", List.init tuples (fun i -> [ Value.int (offset + i); n () ])) ]

let run () =
  Bench_util.banner
    "E3  Prop. 5: glbs of naive tables via the ox-product; size growth";
  Bench_util.row "%-4s %-4s %-10s %-10s %-12s %-12s %-12s" "k" "m" "|glb|"
    "bound" "|core|" "glb(ms)" "core(ms)";
  List.iter
    (fun (k, m) ->
      let tables = List.init k (fun i -> table ~offset:(i * 10) ~tuples:m) in
      let glb, glb_ms = Bench_util.time_ms (fun () -> Glb.family tables) in
      let total = List.fold_left (fun n t -> n + Instance.cardinal t) 0 tables in
      let bound =
        int_of_float
          (Float.pow (float_of_int total /. float_of_int k) (float_of_int k))
      in
      let core, core_ms =
        Bench_util.time_ms (fun () -> Core_instance.core glb)
      in
      (* sanity: the glb is a lower bound of every table *)
      assert (List.for_all (fun t -> Ordering.leq glb t) tables);
      Bench_util.row "%-4d %-4d %-10d %-10d %-12d %-12.2f %-12.2f" k m
        (Instance.cardinal glb) bound (Instance.cardinal core) glb_ms core_ms)
    [ (2, 2); (2, 3); (3, 2); (3, 3); (4, 2); (4, 3); (5, 2) ];
  Bench_util.subsection
    "exponential cores (adapted from [16]): prime directed cycles as naive tables";
  (* the glb of {C_p : p prime} is hom-equivalent to C_(prod p): its core
     has prod(p) tuples while the family itself has only sum(p) — the core
     of the glb is necessarily exponential in the family size *)
  let cycle_table p =
    let nulls = Array.init p (fun _ -> Value.fresh_null ()) in
    Instance.of_list
      [ ("R", List.init p (fun i -> [ nulls.(i); nulls.((i + 1) mod p) ])) ]
  in
  Bench_util.row "%-14s %-8s %-10s %-10s %-12s" "family" "||X||" "|glb|"
    "|core|" "core(ms)";
  List.iter
    (fun primes ->
      let tables = List.map cycle_table primes in
      let total = List.fold_left ( + ) 0 primes in
      let glb = Glb.family tables in
      let core, core_ms =
        Bench_util.time_ms (fun () -> Core_instance.core glb)
      in
      Bench_util.row "%-14s %-8d %-10d %-10d %-12.1f"
        (String.concat "," (List.map string_of_int primes))
        total (Instance.cardinal glb) (Instance.cardinal core) core_ms)
    [ [ 2; 3 ]; [ 2; 5 ]; [ 3; 5 ]; [ 2; 3; 5 ] ];

  Bench_util.subsection
    "glbs with shared constants (cores shrink when tables agree)";
  Bench_util.row "%-4s %-10s %-10s" "k" "|glb|" "|core|";
  List.iter
    (fun k ->
      (* identical tables: the glb is equivalent to the table itself *)
      let t = table ~offset:0 ~tuples:3 in
      let glb = Glb.family (List.init k (fun _ -> t)) in
      let core = Core_instance.core glb in
      Bench_util.row "%-4d %-10d %-10d" k (Instance.cardinal glb)
        (Instance.cardinal core))
    [ 2; 3; 4 ]

let micro () =
  let t1 = table ~offset:0 ~tuples:4 and t2 = table ~offset:10 ~tuples:4 in
  Bench_util.micro
    [
      ("e3/glb-4x4", fun () -> ignore (Glb.glb t1 t2));
      ("e3/core-of-glb-4x4", fun () -> ignore (Core_instance.core (Glb.glb t1 t2)));
    ]
