(* E2 — Prop. 1: naïve evaluation cannot be extended beyond unions of
   conjunctive queries.  For each non-UCQ feature (inequality, negation,
   universal quantification) we exhibit a database where naïve evaluation
   and certain answers disagree; for the UCQ controls they agree. *)

open Certdb_values
open Certdb_relational
open Certdb_query

let v = Fo.var

let run () =
  Bench_util.banner
    "E2  Prop. 1: the naive-evaluation boundary is exactly UCQ";
  let n1 = Value.fresh_null () and n2 = Value.fresh_null () in
  let c i = Value.int i in
  let cases =
    [
      ( "UCQ control: exists edge",
        Fo.Exists ([ "x"; "y" ], Fo.atom "R" [ v "x"; v "y" ]),
        Instance.of_list [ ("R", [ [ n1; c 1 ] ]) ],
        [],
        true );
      ( "inequality: exists x<>y in R",
        Fo.Exists
          ( [ "x"; "y" ],
            Fo.conj
              [ Fo.atom "R" [ v "x"; v "x" ]; Fo.atom "R" [ v "y"; v "y" ];
                Fo.Not (Fo.Eq (v "x", v "y")) ] ),
        Instance.of_list [ ("R", [ [ n1; n1 ]; [ n2; n2 ] ]) ],
        [],
        false );
      ( "negation: exists R(x) and not S(x)",
        Fo.Exists
          ([ "x" ], Fo.And (Fo.atom "R" [ v "x" ], Fo.Not (Fo.atom "S" [ v "x" ]))),
        Instance.of_list [ ("R", [ [ n1 ] ]) ],
        [ Instance.of_list [ ("R", [ [ c 5 ] ]); ("S", [ [ c 5 ] ]) ] ],
        false );
      ( "universal: all R-elements are S",
        Fo.Forall ([ "x" ], Fo.Implies (Fo.atom "R" [ v "x" ], Fo.atom "S" [ v "x" ])),
        Instance.of_list [ ("S", [ [ c 1 ] ]) ],
        [ Instance.of_list [ ("S", [ [ c 1 ] ]); ("R", [ [ c 9 ] ]) ] ],
        false );
    ]
  in
  Bench_util.row "%-36s %-8s %-9s %-7s" "query" "naive" "certain" "agree";
  List.iter
    (fun (name, q, d, extra_worlds, expect_agree) ->
      let naive = Certain.naive_holds q d in
      let certain = Certain.certain_holds_fo ~worlds:extra_worlds q d in
      let agree = naive = certain in
      Bench_util.row "%-36s %-8b %-9b %-7b" name naive certain agree;
      assert (agree = expect_agree))
    cases;
  Bench_util.row
    "\nas Prop. 1 predicts: agreement holds exactly on the UCQ control."
