(* E27 — the SAT backend on the planner's own certificate family.

   The profile the [Auto] route certifies for SAT — cyclic, wide, dense,
   with a large class of interchangeable variables — is exactly where
   chronological backtracking pays the k! permutation tax: a k-clique
   query against the complete digraph on k-1 constants is
   pigeonhole-shaped, and the CSP ladder refutes it leaf by leaf while
   the CDCL core's learned clauses plus the encoder's ordering clauses
   over the interchangeable class cut the blowup to a short refutation.

   Claims, oracle-checked in-process:

   - routing: [Plan.route_cq ~backend:Auto] sends every member of the
     family to [Sat_backend k] with the whole clique as one class;
   - agreement: the CSP and SAT answers are identical on every instance,
     refuted and witnessed alike (gauge [bench.sat.agreed] counts them);
   - speed: on the refuted family, [--backend auto] beats the CSP
     ladder — gauge [bench.sat.speedup], CI asserts >= 2x. *)

module Engine = Certdb_csp.Engine
module Obs = Certdb_obs.Obs
module Backend = Certdb_sat.Backend
module Fo = Certdb_query.Fo
module Cq = Certdb_query.Cq
module Plan = Certdb_analysis.Plan
module Instance = Certdb_relational.Instance
module Value = Certdb_values.Value

let v i = Fo.Var (Printf.sprintf "x%d" i)

(* both edge directions per pair: every variable pair is constrained, so
   all k variables form one interchangeable class *)
let clique_cq k =
  let ids = List.init k Fun.id in
  Cq.boolean
    (List.concat_map
       (fun a ->
         List.filter_map
           (fun b -> if a <> b then Some ("E", [ v a; v b ]) else None)
           ids)
       ids)

let complete_digraph n =
  let ids = List.init n Fun.id in
  Instance.of_list
    [
      ( "E",
        List.concat_map
          (fun i ->
            List.filter_map
              (fun j ->
                if i <> j then Some [ Value.int (i + 1); Value.int (j + 1) ]
                else None)
              ids)
          ids );
    ]

(* k-clique into K_{k-1}: refuted (pigeonhole); into K_k: witnessed.
   k = 6 is already a ~50x gap (measured: 110 ms vs 2 ms), and the gap
   grows factorially — k = 8 is ~3000x — so the smoke sizes stay small *)
let family = [ (5, 4, false); (6, 5, false); (5, 5, true); (6, 6, true) ]

let answer backend q d =
  match Plan.certain ~backend q d with
  | `Exact b -> b
  | `Lower_bound _ -> failwith "E27: degraded under an unlimited budget"

let run () =
  Bench_util.banner "E27  SAT backend vs the CSP ladder on clique families";
  let agreed = ref 0 in
  List.iter
    (fun (k, n, expected) ->
      let q = clique_cq k in
      (match (Plan.route_cq ~backend:Backend.Auto q).Plan.route with
      | Plan.Sat_backend cls when cls = k -> ()
      | r ->
        failwith
          (Printf.sprintf "E27: clique %d routed to %s under auto" k
             (Plan.route_to_string r)));
      let d = complete_digraph n in
      let csp = answer Backend.Csp q d in
      let sat = answer Backend.Auto q d in
      if csp <> sat then failwith "E27: backends disagree";
      if csp <> expected then failwith "E27: wrong certain answer";
      incr agreed)
    family;
  Obs.set_int (Obs.gauge "bench.sat.agreed") !agreed;
  Bench_util.subsection "refuted family: K_k query into K_{k-1}";
  Bench_util.row "%-6s %-14s %-14s %-10s" "k" "csp(ms)" "auto(ms)" "speedup";
  let speedups =
    List.filter_map
      (fun (k, n, expected) ->
        if expected then None
        else begin
          let q = clique_cq k and d = complete_digraph n in
          let t_csp =
            Bench_util.time_ms_median (fun () ->
                ignore (answer Backend.Csp q d))
          in
          let t_sat =
            Bench_util.time_ms_median (fun () ->
                ignore (answer Backend.Auto q d))
          in
          let s = t_csp /. t_sat in
          Bench_util.row "%-6d %-14.2f %-14.2f %-10.2f" k t_csp t_sat s;
          Some s
        end)
      family
  in
  (* the headline gauge is the largest family member's speedup: the
     permutation tax grows factorially, the refutation doesn't *)
  let speedup = List.fold_left Float.max 0.0 speedups in
  Obs.set (Obs.gauge "bench.sat.speedup") speedup;
  Bench_util.row "agreement: %d/%d instances; speedup gauge: %.2fx" !agreed
    (List.length family) speedup

let micro () =
  let q = clique_cq 6 and d = complete_digraph 5 in
  Bench_util.micro
    [
      ("e27/csp-clique6", fun () -> ignore (answer Backend.Csp q d));
      ("e27/sat-clique6", fun () -> ignore (answer Backend.Auto q d));
    ]
