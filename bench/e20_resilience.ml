(* E20 — the Resilient retry/escalation ladder: how many of a family of
   budget-starved hom searches each policy settles, at what cost.  Every
   instance runs under the same tight per-attempt node budget; policies
   differ in attempts, escalation factor, and whether retries use seeded
   randomized restarts.  Definitive answers are checked against the
   unlimited engine, so a policy can only trade "unknown" for work —
   never for a wrong answer (the Resilient invariant). *)

module Engine = Certdb_csp.Engine
module Resilient = Certdb_csp.Resilient
module Structure = Certdb_csp.Structure
module Config = Certdb_csp.Engine.Config
module Obs = Certdb_obs.Obs

(* adversarial-ish random digraph pairs: dense-enough sources into
   sparser targets, so a fair share of instances are Unsat with a large
   refutation tree — exactly where budgets trip and restarts matter *)
let instances n =
  List.init n (fun i ->
      let st = Random.State.make [| 0xe20; i |] in
      let gen nodes p =
        let edges = ref [] in
        for a = 0 to nodes - 1 do
          for b = 0 to nodes - 1 do
            if a <> b && Random.State.float st 1.0 < p then
              edges := [| a; b |] :: !edges
          done
        done;
        Structure.make
          ~nodes:(List.init nodes (fun v -> (v, None)))
          ~tuples:[ ("E", !edges) ]
      in
      (gen 10 0.5, gen 7 0.25))

let budget = 10 (* per-attempt node budget: starves a big minority *)

let policies =
  [
    ("no-retry", Resilient.Policy.no_retry);
    ( "escalate x4",
      Resilient.Policy.make ~max_attempts:3 ~escalation:4.0 ~restart_seed:None
        ~propagate_first:false () );
    ( "escalate+restarts",
      Resilient.Policy.make ~max_attempts:3 ~escalation:4.0
        ~propagate_first:false () );
    ( "full ladder",
      Resilient.Policy.make ~max_attempts:3 ~escalation:4.0 () );
  ]

let run_policy policy pairs =
  List.map
    (fun (source, target) ->
      let config =
        Config.make ~limits:(Engine.Limits.make ~nodes:budget ()) ()
      in
      Resilient.satisfiable ~policy ~config ~source ~target ())
    pairs

let run () =
  Bench_util.banner
    "E20  Resilient: retry/escalation policies on budget-starved searches";
  let pairs = instances 60 in
  let oracle =
    List.map
      (fun (source, target) ->
        match Engine.satisfiable ~source ~target () with
        | Engine.Sat () -> `Sat
        | Engine.Unsat -> `Unsat
        | Engine.Unknown _ -> failwith "E20: unlimited oracle returned Unknown")
      pairs
  in
  Bench_util.row "%d instances, per-attempt node budget %d" (List.length pairs)
    budget;
  Bench_util.row "%-20s %-9s %-10s %-10s %-10s %-10s" "policy" "settled"
    "unknown" "attempts" "wall(ms)" "sound";
  List.iter
    (fun (name, policy) ->
      let results = run_policy policy pairs in
      let ms = Bench_util.time_ms_median (fun () -> run_policy policy pairs) in
      let settled = ref 0 and unknown = ref 0 and attempts = ref 0 in
      let sound = ref true in
      List.iter2
        (fun r want ->
          attempts := !attempts + r.Resilient.attempts;
          match r.Resilient.outcome with
          | Engine.Sat () ->
            incr settled;
            if want <> `Sat then sound := false
          | Engine.Unsat ->
            incr settled;
            if want <> `Unsat then sound := false
          | Engine.Unknown _ -> incr unknown)
        results oracle;
      Obs.set
        (Obs.gauge (Printf.sprintf "bench.resilient.settled.%s" name))
        (float_of_int !settled);
      Bench_util.row "%-20s %-9d %-10d %-10d %-10.2f %-10s" name !settled
        !unknown !attempts ms
        (if !sound then "yes" else "NO");
      if not !sound then
        failwith
          (Printf.sprintf "E20: policy %S contradicted the unlimited oracle"
             name))
    policies

let micro () =
  let pairs = instances 12 in
  Bench_util.micro
    [
      ( "e20/no-retry",
        fun () -> ignore (run_policy Resilient.Policy.no_retry pairs) );
      ( "e20/full-ladder",
        fun () -> ignore (run_policy Resilient.Policy.default pairs) );
    ]
