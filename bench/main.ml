(* Experiment harness: one section per experiment in DESIGN.md's
   per-experiment index (the paper is a theory paper — each "table" is the
   executable content of a numbered result), plus Bechamel micro-benchmarks
   and the ablations.

   Usage:
     dune exec bench/main.exe                 # all experiments
     dune exec bench/main.exe -- e4 e11       # selected experiments
     dune exec bench/main.exe -- micro        # micro-benchmarks only
     dune exec bench/main.exe -- all micro    # everything
     dune exec bench/main.exe -- all --json bench_out.json
                                              # + one JSON record per
                                              #   experiment (wall ms,
                                              #   obs counters/timers) *)

let experiments =
  [
    ("e1", "naive evaluation = certain answers for UCQs", E01_naive_ucq.run);
    ("e2", "Prop. 1: the naive-evaluation boundary", E02_naive_boundary.run);
    ("e3", "Prop. 5: relational glbs and size growth", E03_glb_product.run);
    ("e4", "Theorem 3: no glb for the cycle family", E04_no_glb_cycles.run);
    ("e5", "Prop. 4: orderings on Codd vs naive", E05_codd_orderings.run);
    ("e6", "Prop. 8: CWA = hoare + Hall", E06_cwa_hall.run);
    ("e7", "XML glbs; Props. 6 and 10", E07_xml_glb.run);
    ("e8", "Theorem 4: the generalized glb", E08_gdm_glb.run);
    ("e9", "Theorem 5: universal solutions = lubs", E09_exchange_lub.run);
    ("e10", "Prop. 11: consistency", E10_consistency.run);
    ("e11", "Theorem 6: Codd membership at bounded treewidth", E11_codd_membership.run);
    ("e12", "Theorem 7: FO(S,~) query answering", E12_query_answering.run);
    ("e13", "Theorem 1/Lemma 1/Cor. 1 instantiated", E13_maxdesc.run);
    ("e14", "tree patterns and XML-to-XML queries", E14_patterns.run);
    ("e15", "c-tables: strong representation system", E15_ctables.run);
    ("e16", "XML exchange: loss of canonicity", E16_xml_exchange.run);
    ("e17", "Prop. 3/9: ordering = homomorphism", E17_prop3.run);
    ("e18", "1990s lifts: nested relations vs XML", E18_nineties.run);
    ("e19", "Engine.Batch: domain-parallel hom-search throughput", E19_engine_batch.run);
    ("e20", "Resilient: retry/escalation policies under starved budgets", E20_resilience.run);
    ("e21", "Planner: certificate-driven routing vs fixed strategies", E21_planner.run);
    ("e22", "Service: semantic cache on a Zipf-skewed replay", E22_service.run);
    ("e23", "Tracing: request-span overhead on the e22 replay", E23_tracing.run);
    ("e24", "interned/bitset core and component-parallel hom search",
     E24_components.run);
    ("e25", "Robust serve: e22 replay under wire faults + overload burst",
     E25_robust_serve.run);
    ("e26", "Constraint certificates: graded checks vs completion enumeration",
     E26_constraint_certs.run);
    ("e27", "SAT backend: CDCL + symmetry breaking vs the CSP ladder",
     E27_sat_backend.run);
  ]

let micros =
  [
    E01_naive_ucq.micro; E03_glb_product.micro; E04_no_glb_cycles.micro;
    E05_codd_orderings.micro; E06_cwa_hall.micro; E07_xml_glb.micro;
    E08_gdm_glb.micro; E09_exchange_lub.micro; E10_consistency.micro;
    E11_codd_membership.micro; E12_query_answering.micro;
    E14_patterns.micro; E15_ctables.micro; E19_engine_batch.micro;
    E20_resilience.micro; E21_planner.micro; E22_service.micro;
    E23_tracing.micro; E24_components.micro; E26_constraint_certs.micro;
    E27_sat_backend.micro;
  ]

let run_micros () =
  Bench_util.banner "Bechamel micro-benchmarks";
  List.iter (fun m -> m ()) micros

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --json FILE: emit one machine-readable record per experiment *)
  let rec extract_json acc = function
    | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
    | "--json" :: [] ->
      prerr_endline "bench: --json needs a file argument";
      exit 2
    | x :: rest -> extract_json (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json_path, args = extract_json [] args in
  let records = ref [] in
  let recorded name title run =
    Certdb_obs.Obs.reset ();
    let (), wall_ms = Bench_util.time_ms run in
    if json_path <> None then
      records :=
        Bench_util.bench_record ~name ~title ~wall_ms
          (Certdb_obs.Obs.snapshot ())
        :: !records
  in
  let want name = args = [] || List.mem name args || List.mem "all" args in
  List.iter
    (fun (name, title, run) -> if want name then recorded name title run)
    experiments;
  if List.mem "micro" args then run_micros ();
  if List.mem "ablations" args || args = [] || List.mem "all" args then
    recorded "ablations" "solver / DP / glb ablations" Ablations.run;
  (match json_path with
  | None -> ()
  | Some path ->
    Bench_util.write_bench_json ~path (List.rev !records);
    Printf.printf "wrote %d bench records to %s\n%!" (List.length !records)
      path);
  Bench_util.banner "done"
