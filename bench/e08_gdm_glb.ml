(* E8 — Theorem 4: the generalized-model glb ∧Σ specializes to the
   relational ⊗-product when σ = ∅ and supports class-restricted glbs ∧K.
   Shape: ∧Σ of coded relational instances is ∼-equivalent to the Prop. 5
   construction; witnesses returned by the construction check as
   homomorphisms; the tree construction remains a lower bound. *)

open Certdb_relational
open Certdb_gdm

let run () =
  Bench_util.banner
    "E8  Theorem 4: one glb construction for all data models";
  Bench_util.subsection "sigma = empty: agreement with the relational product";
  Bench_util.row "%-6s %-10s %-10s %-10s %-10s" "seed" "|glb-rel|"
    "|glb-gdm|" "equiv" "ms";
  List.iter
    (fun seed ->
      let mk s =
        Codd.random_naive ~seed:s ~schema:[ ("R", 2); ("S", 1) ] ~facts:4
          ~null_prob:0.4 ~domain:2 ~null_pool:2 ()
      in
      let r1 = mk seed and r2 = mk (seed + 1000) in
      let rel = Glb.glb r1 r2 in
      let gdm, ms =
        Bench_util.time_ms (fun () ->
            Encode.to_instance
              (Gglb.glb_sigma (Encode.of_instance r1) (Encode.of_instance r2)))
      in
      Bench_util.row "%-6d %-10d %-10d %-10b %-10.2f" seed
        (Instance.cardinal rel) (Instance.cardinal gdm)
        (Ordering.equiv rel gdm) ms)
    [ 0; 1; 2; 3; 4 ];

  Bench_util.subsection "projection homomorphisms returned by the construction";
  let ok = ref 0 in
  for seed = 0 to 9 do
    let mk s =
      Encode.of_instance
        (Codd.random_naive ~seed:s ~schema:[ ("R", 2) ] ~facts:3
           ~null_prob:0.4 ~domain:2 ~null_pool:2 ())
    in
    let d1 = mk seed and d2 = mk (seed + 2000) in
    let g, left, right = Gglb.glb_sigma_full d1 d2 in
    if Ghom.is_hom left g d1 && Ghom.is_hom right g d2 then incr ok
  done;
  Bench_util.row "witnesses valid: %d/10" !ok;

  Bench_util.subsection
    "trees through ∧K: Theorem 4's construction = the direct tree glb";
  let open Certdb_xml in
  let equiv_ok = ref 0 and trials = ref 0 in
  for seed = 0 to 9 do
    let mk s =
      let t =
        Tree.random ~seed:s
          ~labels:[ ("r", 0); ("a", 1); ("b", 1) ]
          ~max_depth:3 ~max_children:2 ~null_prob:0.3 ~domain:2 ()
      in
      { t with Tree.label = "r"; data = [||] }
    in
    let t1 = mk seed and t2 = mk (seed + 3000) in
    match Tree_glb.glb t1 t2 with
    | Some g ->
      incr trials;
      let via_gdm =
        Gglb.glb_in_class ~class_glb:Tree_class.class_glb (Tree.to_gdb t1)
          (Tree.to_gdb t2)
      in
      if Gordering.equiv via_gdm (Tree.to_gdb g) then incr equiv_ok
    | None -> ()
  done;
  Bench_util.row "∧K equivalent to the [16] construction: %d/%d" !equiv_ok !trials

let micro () =
  let mk s =
    Encode.of_instance
      (Codd.random_naive ~seed:s ~schema:[ ("R", 2) ] ~facts:5
         ~null_prob:0.4 ~domain:3 ~null_pool:2 ())
  in
  let d1 = mk 1 and d2 = mk 2 in
  Bench_util.micro
    [ ("e8/gdm-glb-sigma", fun () -> ignore (Gglb.glb_sigma d1 d2)) ]
