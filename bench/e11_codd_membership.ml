(* E11 — Theorem 6: membership under the Codd interpretation is PTIME for
   bounded-treewidth structures.  Shape: the bounded-treewidth dynamic
   program scales polynomially on tree-shaped and width-2 inputs while the
   propagation-free backtracking baseline degrades; both agree with the
   MRV solver on small instances. *)

open Certdb_csp
open Certdb_gdm

let tree_gdb ~seed ~nodes ~labels ~null_prob ~domain =
  Ggen.tree ~seed ~nodes ~labels ~null_prob ~domain ()

let ladder_gdb ~seed ~rungs ~null_prob ~domain =
  Ggen.ladder ~seed ~rungs ~null_prob ~domain ()

let naive_backtrack_leq d d' =
  (* the ablation baseline: lexicographic backtracking restricted by the
     candidate relation, no decomposition *)
  Option.is_some
    (Solver.find_hom_naive
       ~restrict:(Membership.candidate_relation d d')
       ~source:(Gdb.structure d) ~target:(Gdb.structure d') ())

let run () =
  Bench_util.banner
    "E11  Theorem 6: Codd membership in PTIME at bounded treewidth";
  Bench_util.subsection "agreement of DP, MRV solver and naive backtracking";
  let agree = ref 0 and trials = 20 in
  for seed = 0 to trials - 1 do
    let d = tree_gdb ~seed ~nodes:6 ~labels:[ "a"; "b" ] ~null_prob:0.5 ~domain:2 in
    let d' =
      Gdb.ground
        (tree_gdb ~seed:(seed + 500) ~nodes:7 ~labels:[ "a"; "b" ]
           ~null_prob:0.0 ~domain:2)
    in
    let dp = Membership.codd_leq d d' in
    let mrv = Membership.generic_leq d d' in
    let naive = naive_backtrack_leq d d' in
    if dp = mrv && mrv = naive then incr agree
  done;
  Bench_util.row "all three algorithms agree: %d/%d" !agree trials;

  Bench_util.subsection "scaling on tree-shaped instances (treewidth 1)";
  Bench_util.row "%-8s %-8s %-12s %-12s %-12s %-12s %-14s" "nodes" "width"
    "dp(ms)" "dp-bags" "mrv(ms)" "mrv-steps" "naive-bt(ms)";
  List.iter
    (fun nodes ->
      let d =
        tree_gdb ~seed:42 ~nodes ~labels:[ "a"; "b" ] ~null_prob:0.4 ~domain:3
      in
      let d' =
        Gdb.ground
          (tree_gdb ~seed:43 ~nodes:(nodes + 4) ~labels:[ "a"; "b" ]
             ~null_prob:0.0 ~domain:3)
      in
      let decomposition = Treewidth.of_structure (Gdb.structure d) in
      let dp_ms =
        Bench_util.time_ms_median (fun () -> ignore (Membership.codd_leq ~decomposition d d'))
      in
      (* work counters for one run, read back through the obs registry *)
      let _, dp_bags =
        Bench_util.with_counter "csp.btw.bag_assignments" (fun () ->
            ignore (Membership.codd_leq ~decomposition d d'))
      in
      (* the generic solver is exponential on unsatisfiable instances; past
         32 nodes it no longer terminates in reasonable time — exactly the
         separation Theorem 6 is about *)
      let mrv_ms =
        if nodes <= 32 then
          Bench_util.time_ms_median (fun () -> ignore (Membership.generic_leq d d'))
        else Float.nan
      in
      let mrv_steps =
        if nodes <= 32 then
          snd
            (Bench_util.with_counter "csp.solver.decisions" (fun () ->
                 ignore (Membership.generic_leq d d')))
        else -1
      in
      let naive_ms =
        if nodes <= 32 then
          Bench_util.time_ms_median (fun () -> ignore (naive_backtrack_leq d d'))
        else Float.nan
      in
      Bench_util.row "%-8d %-8d %-12.3f %-12d %-12.3f %-12d %-14.3f" nodes
        (Treewidth.width decomposition) dp_ms dp_bags mrv_ms mrv_steps
        naive_ms)
    [ 8; 16; 32; 64; 128 ];

  Bench_util.subsection "scaling on ladders (treewidth 2)";
  Bench_util.row "%-8s %-8s %-12s" "nodes" "width" "dp(ms)";
  List.iter
    (fun rungs ->
      let d = ladder_gdb ~seed:7 ~rungs ~null_prob:0.4 ~domain:3 in
      let d' = Gdb.ground (ladder_gdb ~seed:8 ~rungs:(rungs + 2) ~null_prob:0.0 ~domain:3) in
      let decomposition = Treewidth.of_structure (Gdb.structure d) in
      let dp_ms =
        Bench_util.time_ms_median (fun () ->
            ignore (Membership.codd_leq ~decomposition d d'))
      in
      Bench_util.row "%-8d %-8d %-12.3f" (2 * rungs)
        (Treewidth.width decomposition) dp_ms)
    [ 4; 8; 16; 32 ]

let micro () =
  let d = tree_gdb ~seed:2 ~nodes:32 ~labels:[ "a"; "b" ] ~null_prob:0.4 ~domain:3 in
  let d' =
    Gdb.ground (tree_gdb ~seed:3 ~nodes:36 ~labels:[ "a"; "b" ] ~null_prob:0.0 ~domain:3)
  in
  Bench_util.micro
    [
      ("e11/codd-dp-32", fun () -> ignore (Membership.codd_leq d d'));
      ("e11/mrv-32", fun () -> ignore (Membership.generic_leq d d'));
    ]
