(* E15 — conditional tables (Imieliński–Lipski [26]), the strong
   representation system behind the paper's background: the algebra
   commutes with grounding (rep(op T) = op(rep T)), difference is
   representable (it is not on naïve tables), and certain answers stay
   cheap symbolically while the grounding reference explodes. *)

open Certdb_values
open Certdb_relational

let mk_ctable ~seed ~rows_n ~null_pool =
  let st = Random.State.make [| seed |] in
  let nulls = Array.init null_pool (fun i -> Value.null (7000 + (seed * 100) + i)) in
  let value () =
    if Random.State.bool st then nulls.(Random.State.int st null_pool)
    else Value.int (Random.State.int st 3)
  in
  let guard () =
    match Random.State.int st 3 with
    | 0 -> Ctable.CTrue
    | 1 -> Ctable.CEq (value (), value ())
    | _ -> Ctable.CNeq (value (), value ())
  in
  Ctable.of_rows ~arity:2
    (List.init rows_n (fun _ ->
         { Ctable.args = [| value (); value () |]; guard = guard () }))

let run () =
  Bench_util.banner
    "E15  C-tables: a strong representation system for full RA";
  Bench_util.subsection
    "rep(op T) = op(rep T) over sampled groundings (random tables)";
  Bench_util.row "%-6s %-10s %-12s %-10s" "seed" "op" "groundings" "agree";
  List.iter
    (fun seed ->
      let t1 = mk_ctable ~seed ~rows_n:2 ~null_pool:2 in
      let t2 = mk_ctable ~seed:(seed + 50) ~rows_n:2 ~null_pool:2 in
      let valuations = Ctable.sample_valuations (Ctable.union t1 t2) in
      let ops =
        [
          ( "select",
            Ctable.select_eq_col 0 1 t1,
            fun w -> List.filter (fun tu -> Value.equal tu.(0) tu.(1)) w );
          ( "project",
            Ctable.project [ 1 ] t1,
            fun w ->
              List.sort_uniq compare (List.map (fun tu -> [| tu.(1) |]) w) );
        ]
      in
      List.iter
        (fun (name, sym, reference) ->
          let agree =
            List.for_all
              (fun h ->
                List.sort compare (Ctable.ground h sym)
                = List.sort compare (reference (Ctable.ground h t1)))
              valuations
          in
          Bench_util.row "%-6d %-10s %-12d %-10b" seed name
            (List.length valuations) agree)
        ops;
      (* difference needs both tables *)
      let diff = Ctable.difference t1 t2 in
      let agree =
        List.for_all
          (fun h ->
            let w2 = Ctable.ground h t2 in
            List.sort compare (Ctable.ground h diff)
            = List.sort compare
                (List.filter (fun tu -> not (List.mem tu w2)) (Ctable.ground h t1)))
          valuations
      in
      Bench_util.row "%-6d %-10s %-12d %-10b" seed "difference"
        (List.length valuations) agree)
    [ 0; 1; 2 ];

  Bench_util.subsection
    "certain answers: symbolic table vs grounding enumeration";
  Bench_util.row "%-7s %-9s %-14s %-12s" "rows" "nulls" "groundings"
    "certain(ms)";
  List.iter
    (fun (rows_n, null_pool) ->
      let t = mk_ctable ~seed:7 ~rows_n ~null_pool in
      let groundings = List.length (Ctable.sample_valuations t) in
      let _, ms = Bench_util.time_ms (fun () -> Ctable.certain_tuples t) in
      Bench_util.row "%-7d %-9d %-14d %-12.2f" rows_n null_pool groundings ms)
    [ (2, 1); (3, 2); (4, 3); (5, 4) ];
  Bench_util.row
    "\n(the grounding count is m^k: the coNP flavour of c-table certainty)"

let micro () =
  let t1 = mk_ctable ~seed:1 ~rows_n:3 ~null_pool:2 in
  let t2 = mk_ctable ~seed:2 ~rows_n:3 ~null_pool:2 in
  Bench_util.micro
    [ ("e15/ctable-difference", fun () -> ignore (Ctable.difference t1 t2)) ]
