(* E22 — the query service's semantic cache: replay a Zipf-skewed stream
   of Boolean and non-Boolean CQs against one loaded database, cache off
   vs cache on.  Every request goes through [Server.handle_line] — the
   honest served path: JSON parse, CQ parse, planner routing, and (cache
   on) core-canonicalisation and the LRU — so the reported latencies are
   end-to-end.  Each shape is replayed under fresh variable names and a
   rotated atom order per occurrence, so cache hits are earned by
   canonicalisation, not string equality.

   Checked invariants (the bench fails on violation):
   - hit/miss totals match the replay schedule exactly: misses = distinct
     query shapes drawn, hits = requests - misses, bypasses = 0;
   - cached answers equal the cache-off answers request by request;
   - the cache-hit path is >= 5x faster at the median than the same
     stream with the cache disabled. *)

module Obs = Certdb_obs.Obs
module Json = Obs.Json
module Server = Certdb_service.Server

let requests = 400
let variants = 4

(* ---- query shapes ---------------------------------------------------- *)

let rotate j l =
  let n = List.length l in
  if n = 0 then l
  else
    let j = j mod n in
    let rec split i acc = function
      | rest when i = 0 -> rest @ List.rev acc
      | x :: rest -> split (i - 1) (x :: acc) rest
      | [] -> List.rev acc
    in
    split j [] l

(* variant [j] of every shape renames all variables and rotates the atom
   order: hom-equivalent, syntactically disjoint *)
let v j i = Printf.sprintf "_v%d_%d" j i

let atoms_to_query ?(head = "") atoms j =
  Printf.sprintf "ans(%s) :- %s" head (String.concat ", " (rotate j atoms))

let cycle k j =
  atoms_to_query
    (List.init k (fun i -> Printf.sprintf "R(%s,%s)" (v j i) (v j ((i + 1) mod k))))
    j

let path k j =
  atoms_to_query
    (List.init k (fun i -> Printf.sprintf "R(%s,%s)" (v j i) (v j (i + 1))))
    j

let clique k j =
  let ids = List.init k Fun.id in
  atoms_to_query
    (List.concat_map
       (fun a ->
         List.filter_map
           (fun b ->
             if a < b then Some (Printf.sprintf "R(%s,%s)" (v j a) (v j b))
             else None)
           ids)
       ids)
    j

let back_and_forth j =
  atoms_to_query
    [
      Printf.sprintf "R(%s,%s)" (v j 0) (v j 1);
      Printf.sprintf "R(%s,%s)" (v j 1) (v j 0);
    ]
    j

(* one non-Boolean shape: certain answers, cached as an answer set *)
let answers_shape j =
  atoms_to_query ~head:(v j 0)
    [
      Printf.sprintf "R(%s,%s)" (v j 0) (v j 1);
      Printf.sprintf "R(%s,%s)" (v j 1) (v j 0);
    ]
    j

(* popularity rank order: the Zipf head is the expensive hom-ladder work *)
let shapes =
  [
    ("cycle-5", cycle 5); ("clique-4", clique 4); ("cycle-7", cycle 7);
    ("cycle-3", cycle 3); ("answers-2loop", answers_shape);
    ("cycle-4", cycle 4); ("path-6", path 6); ("cycle-6", cycle 6);
    ("back-forth", back_and_forth); ("path-3", path 3);
  ]

(* ---- the replayed stream --------------------------------------------- *)

let instance_src =
  let st = Random.State.make [| 0xe22; 1 |] in
  let value () =
    if Random.State.float st 1.0 < 0.8 then
      string_of_int (1 + Random.State.int st 6)
    else Printf.sprintf "_n%d" (Random.State.int st 6)
  in
  List.init 80 (fun _ -> Printf.sprintf "R(%s,%s)" (value ()) (value ()))
  |> String.concat "; "

(* Zipf over shape ranks (weight 1/rank), uniform over variants *)
let stream =
  let st = Random.State.make [| 0xe22; 2 |] in
  let n = List.length shapes in
  let weights = List.init n (fun r -> 1.0 /. float_of_int (r + 1)) in
  let total = List.fold_left ( +. ) 0.0 weights in
  let draw () =
    let x = Random.State.float st total in
    let rec pick r acc = function
      | [] -> n - 1
      | w :: ws -> if x < acc +. w then r else pick (r + 1) (acc +. w) ws
    in
    pick 0 0.0 weights
  in
  List.init requests (fun _ ->
      let shape = draw () in
      let j = Random.State.int st variants in
      let _, mk = List.nth shapes shape in
      ( shape,
        Json.to_string
          (Json.Obj
             [
               ("op", Json.String "query");
               ("db", Json.String "d");
               ("query", Json.String (mk j));
             ]) ))

let distinct_shapes =
  List.sort_uniq compare (List.map fst stream) |> List.length

(* ---- replay ---------------------------------------------------------- *)

(* the per-request observable answer, for the cached = fresh check *)
let answer_of row =
  match (Json.member "certain" row, Json.member "answers" row) with
  | Some (Json.Bool b), _ -> Bool.to_string b
  | _, Some (Json.String s) -> s
  | _ -> failwith ("e22: no answer in " ^ Json.to_string row)

let replay ~cache =
  Obs.reset ();
  let config =
    Server.Config.make ~cache_capacity:(if cache then 1024 else 0) ()
  in
  let server = Server.create ~config () in
  (match Server.load server ~name:"d" ~source:instance_src with
  | Ok _ -> ()
  | Error m -> failwith ("e22: load failed: " ^ m));
  let answers =
    List.mapi
      (fun idx (_, line) ->
        let row, _ = Server.handle_line server ~idx line in
        match Json.member "status" row with
        | Some (Json.String "ok") -> answer_of row
        | _ -> failwith ("e22: request failed: " ^ Json.to_string row))
      stream
  in
  (answers, Obs.snapshot (), Server.cache_totals server)

let timer snap name =
  match Obs.find_timer snap name with
  | Some s -> s
  | None -> failwith ("e22: timer " ^ name ^ " never fired")

let run () =
  Bench_util.banner "E22  Service: semantic cache on a Zipf-skewed replay";
  Bench_util.row "%d requests, %d shapes (%d drawn) x %d renamed variants, %s"
    requests (List.length shapes) distinct_shapes variants
    "Zipf weights 1/rank";
  let answers_off, snap_off, _ = replay ~cache:false in
  let off = timer snap_off "service.request" in
  let answers_on, snap_on, totals = replay ~cache:true in
  let on_all = timer snap_on "service.request" in
  let on_hit = timer snap_on "service.request.hit" in
  let totals = Option.get totals in
  Bench_util.row "%-11s %-9s %-9s %-12s %-12s" "run" "hits" "misses"
    "p50(ms)" "p95(ms)";
  Bench_util.row "%-11s %-9d %-9d %-12.4f %-12.4f" "cache-off" 0 requests
    off.Obs.p50_ms off.Obs.p95_ms;
  Bench_util.row "%-11s %-9d %-9d %-12.4f %-12.4f" "cache-on"
    totals.Certdb_service.Cache.hits totals.Certdb_service.Cache.misses
    on_all.Obs.p50_ms on_all.Obs.p95_ms;
  Bench_util.row "%-11s %-9s %-9s %-12.4f %-12.4f" "  hit path" "" ""
    on_hit.Obs.p50_ms on_hit.Obs.p95_ms;
  (* cached answers = fresh answers, request by request *)
  List.iteri
    (fun i (a, b) ->
      if not (String.equal a b) then
        failwith
          (Printf.sprintf "e22: request %d answered %S cached vs %S fresh" i b
             a))
    (List.combine answers_off answers_on);
  Bench_util.row "cached answers = fresh answers on all %d requests" requests;
  (* counters must match the schedule exactly *)
  let expect name got want =
    if got <> want then
      failwith (Printf.sprintf "e22: %s = %d, expected %d" name got want)
  in
  expect "misses" totals.Certdb_service.Cache.misses distinct_shapes;
  expect "hits" totals.Certdb_service.Cache.hits (requests - distinct_shapes);
  expect "bypasses" totals.Certdb_service.Cache.bypasses 0;
  let hit_rate =
    float_of_int totals.Certdb_service.Cache.hits /. float_of_int requests
  in
  let speedup = off.Obs.p50_ms /. on_hit.Obs.p50_ms in
  Bench_util.row "hit rate %.1f%%; median speedup on the hit path: %.1fx"
    (100.0 *. hit_rate) speedup;
  if speedup < 5.0 then
    failwith
      (Printf.sprintf "e22: hit-path speedup %.2fx below the 5x floor" speedup)

let micro () =
  let mk_server cache =
    let config =
      Server.Config.make ~cache_capacity:(if cache then 64 else 0) ()
    in
    let server = Server.create ~config () in
    (match Server.load server ~name:"d" ~source:instance_src with
    | Ok _ -> ()
    | Error m -> failwith m);
    server
  in
  let hot = mk_server true and cold = mk_server false in
  let line j =
    Json.to_string
      (Json.Obj
         [
           ("op", Json.String "query");
           ("db", Json.String "d");
           ("query", Json.String (cycle 5 j));
         ])
  in
  ignore (Server.handle_line hot ~idx:0 (line 0));
  Bench_util.micro
    [
      ( "e22/serve-hit",
        fun () -> ignore (Server.handle_line hot ~idx:0 (line 1)) );
      ( "e22/serve-nocache",
        fun () -> ignore (Server.handle_line cold ~idx:0 (line 1)) );
    ]
