(* E7 — XML glbs (max-descriptions) by level-wise pairing; Prop. 6 (ordered
   trees can lack finite glbs) and Prop. 10 (no lubs for unordered trees).
   Shape: the construction is always a lower bound, dominates sampled lower
   bounds, and its size is at most the product of the operand sizes; the
   two impossibility results check out exhaustively on small pools. *)

open Certdb_xml

let mk_tree seed =
  let t =
    Tree.random ~seed
      ~labels:[ ("r", 0); ("a", 1); ("b", 1); ("c", 0) ]
      ~max_depth:4 ~max_children:3 ~null_prob:0.3 ~domain:3 ()
  in
  { t with Tree.label = "r"; data = [||] }

let run () =
  Bench_util.banner "E7  XML: glbs level by level; Props. 6 and 10";
  Bench_util.subsection "glb validity and size on random tree pairs";
  Bench_util.row "%-6s %-8s %-8s %-8s %-10s %-10s" "seed" "|T1|" "|T2|"
    "|glb|" "lower-bd" "glb(ms)";
  List.iter
    (fun seed ->
      let t1 = mk_tree seed and t2 = mk_tree (seed + 100) in
      match Bench_util.time_ms (fun () -> Tree_glb.glb t1 t2) with
      | Some g, ms ->
        let lb = Tree_hom.leq g t1 && Tree_hom.leq g t2 in
        Bench_util.row "%-6d %-8d %-8d %-8d %-10b %-10.2f" seed
          (Tree.size t1) (Tree.size t2) (Tree.size g) lb ms
      | None, _ -> Bench_util.row "%-6d (no glb: root labels differ)" seed)
    [ 0; 1; 2; 3; 4; 5 ];

  Bench_util.subsection "glb dominates sampled lower bounds";
  let dominated = ref 0 and applicable = ref 0 in
  for seed = 0 to 19 do
    let t1 = mk_tree seed and t2 = mk_tree (seed + 200) in
    let cand = mk_tree (seed + 400) in
    match Tree_glb.glb t1 t2 with
    | Some g when Tree_hom.leq cand t1 && Tree_hom.leq cand t2 ->
      incr applicable;
      if Tree_hom.leq cand g then incr dominated
    | _ -> ()
  done;
  Bench_util.row "lower bounds flowing through the glb: %d/%d" !dominated
    !applicable;

  Bench_util.subsection "Prop. 6: sibling order destroys glbs";
  let ta, tb = Ordered_tree.prop6_pair () in
  let pool = Counterexamples.small_tree_pool () in
  let maxima = Ordered_tree.maximal_lower_bounds_in_pool [ ta; tb ] ~pool in
  Bench_util.row "pool size: %d; maximal lower bounds found: %d (>= 2)"
    (List.length pool) (List.length maxima);
  Bench_util.row "a glb exists in the pool: %b (expected false)"
    (Ordered_tree.has_glb_in_pool [ ta; tb ] ~pool);

  Bench_util.subsection "Prop. 10: no lub for unordered trees";
  Bench_util.row "counterexample verified over the pool: %b"
    (Counterexamples.prop10_check ())

let micro () =
  let t1 = mk_tree 0 and t2 = mk_tree 100 in
  Bench_util.micro
    [
      ("e7/tree-glb", fun () -> ignore (Tree_glb.glb t1 t2));
      ("e7/tree-hom", fun () -> ignore (Tree_hom.leq t1 t2));
    ]
