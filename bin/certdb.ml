(* certdb — command-line front end to the library.

   Instances are written in the Parse syntax: R(1, 2, _x); S(_x, "ann").
   Nulls are _name; the same name is the same null within one instance
   argument (different arguments have disjoint nulls).

     certdb leq    "R(1,_x)" "R(1,2)"          # information ordering
     certdb cwa    "R(_x)"   "R(1)"            # closed-world ordering
     certdb member "R(1,_x)" "R(1,2); R(3,4)"  # membership D' in [[D]]
     certdb glb    "R(1,_x)" "R(1,2)"          # certain information
     certdb lub    "R(1,_x)" "R(_y,2)"         # least upper bound
     certdb core   "R(1,_x); R(1,2)"           # core of an instance
     certdb certain --query "ans(x) :- R(x,y)" "R(1,_u); R(_v,2)"
     certdb chase  --tgd "S(x,y) -> T(x,z); T(z,y)" "S(1,2)"          *)

open Cmdliner
open Certdb_values
open Certdb_relational
module Obs = Certdb_obs.Obs
module Trace = Certdb_obs.Trace
module Openmetrics = Certdb_obs.Openmetrics

(* --stats / --stats-json: print the metrics snapshot (counters, gauges,
   span timers populated by the instrumented hot paths) to stderr after
   the subcommand has run, without disturbing its stdout or exit code. *)
let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print a metrics snapshot (search counters, timers) to stderr.")

let stats_json_flag =
  Arg.(
    value & flag
    & info [ "stats-json" ]
        ~doc:"Print the metrics snapshot as a single JSON object to stderr.")

let emit_stats stats stats_json code =
  if stats_json then prerr_endline (Obs.json_string (Obs.snapshot ()))
  else if stats then
    Format.eprintf "%a%!" Obs.pp_metrics (Obs.snapshot ());
  code

let with_stats term =
  Term.(const emit_stats $ stats_flag $ stats_json_flag $ term)

(* an argument starting with '@' names a file holding the text *)
let resolve_arg s =
  if String.length s > 0 && s.[0] = '@' then begin
    let path = String.sub s 1 (String.length s - 1) in
    match In_channel.with_open_text path In_channel.input_all with
    | contents -> contents
    | exception Sys_error msg ->
      Printf.eprintf "cannot read %s: %s\n" path msg;
      exit 2
  end
  else s

let parse_instance_arg s =
  try fst (Parse.instance (resolve_arg s)) with
  | Parse.Parse_error msg ->
    Printf.eprintf "parse error: %s\n" msg;
    exit 2

let instance_pos ~pos:p ~doc =
  Arg.(required & pos p (some string) None & info [] ~docv:"INSTANCE" ~doc)

let print_instance d = print_endline (Parse.to_string d)

(* leq *)
let leq_cmd =
  let run d1 d2 =
    let d1 = parse_instance_arg d1 and d2 = parse_instance_arg d2 in
    match Hom.find d1 d2 with
    | Some h ->
      Printf.printf "true\n";
      Format.printf "witness: %a@." Valuation.pp h;
      0
    | None ->
      Printf.printf "false\n";
      1
  in
  let d1 = instance_pos ~pos:0 ~doc:"Less informative instance." in
  let d2 = instance_pos ~pos:1 ~doc:"More informative instance." in
  Cmd.v
    (Cmd.info "leq"
       ~doc:"Decide the information ordering D1 <= D2 (homomorphism).")
    (with_stats Term.(const run $ d1 $ d2))

(* cwa *)
let cwa_cmd =
  let run d1 d2 =
    let d1 = parse_instance_arg d1 and d2 = parse_instance_arg d2 in
    let result = Ordering.cwa_leq d1 d2 in
    Printf.printf "%b\n" result;
    if Codd.is_codd d1 then
      Printf.printf "via Prop. 8 (hoare + Hall): %b\n"
        (Ordering.cwa_leq_codd d1 d2);
    if result then 0 else 1
  in
  let d1 = instance_pos ~pos:0 ~doc:"Less informative instance." in
  let d2 = instance_pos ~pos:1 ~doc:"More informative instance." in
  Cmd.v
    (Cmd.info "cwa" ~doc:"Decide the closed-world ordering (onto homomorphism).")
    (with_stats Term.(const run $ d1 $ d2))

(* member *)
let member_cmd =
  let run d r =
    let d = parse_instance_arg d and r = parse_instance_arg r in
    if not (Instance.is_complete r) then begin
      Printf.eprintf "the second instance must be complete\n";
      2
    end
    else begin
      let result = Semantics.mem r d in
      Printf.printf "%b\n" result;
      if result then 0 else 1
    end
  in
  let d = instance_pos ~pos:0 ~doc:"Incomplete instance D." in
  let r = instance_pos ~pos:1 ~doc:"Complete candidate instance." in
  Cmd.v
    (Cmd.info "member" ~doc:"Decide membership: is the completion in [[D]]?")
    (with_stats Term.(const run $ d $ r))

(* glb *)
let glb_cmd =
  let run reduce ds =
    let instances = List.map parse_instance_arg ds in
    (match instances with
    | [] -> Printf.eprintf "need at least one instance\n"
    | _ ->
      let g = Glb.family instances in
      let g = if reduce then Core_instance.core g else g in
      print_instance g);
    0
  in
  let reduce =
    Arg.(value & flag & info [ "core" ] ~doc:"Reduce the result to its core.")
  in
  let ds = Arg.(non_empty & pos_all string [] & info [] ~docv:"INSTANCE") in
  Cmd.v
    (Cmd.info "glb"
       ~doc:
         "Greatest lower bound (certain information / max-description) of \
          the given instances.")
    (with_stats Term.(const run $ reduce $ ds))

(* lub *)
let lub_cmd =
  let run ds =
    let instances = List.map parse_instance_arg ds in
    print_instance (Lub.family instances);
    0
  in
  let ds = Arg.(non_empty & pos_all string [] & info [] ~docv:"INSTANCE") in
  Cmd.v
    (Cmd.info "lub" ~doc:"Least upper bound (disjoint union, nulls renamed).")
    (with_stats Term.(const run $ ds))

(* core *)
let core_cmd =
  let run d =
    print_instance (Core_instance.core (parse_instance_arg d));
    0
  in
  let d = instance_pos ~pos:0 ~doc:"Instance to reduce." in
  Cmd.v (Cmd.info "core" ~doc:"Core of a naive instance.") (with_stats Term.(const run $ d))

(* certain: CQ concrete syntax "ans(x,y) :- R(x,z), S(z,y)", shared with
   the batch and serve wire format *)
let parse_cq_result = Certdb_service.Wire.parse_cq_result

let parse_cq s =
  match parse_cq_result s with
  | Ok q -> q
  | Error msg ->
    Printf.eprintf "query parse error: %s\n" msg;
    exit 2

(* shared retry/budget flags (certain --degrade, batch) *)
let max_attempts_arg =
  Arg.(
    value & opt int 1
    & info [ "max-attempts" ] ~docv:"N"
        ~doc:
          "Budgeted attempts per problem: an unknown outcome is retried \
           with node/backtrack budgets multiplied by the --escalate factor \
           each time.")

let escalate_arg =
  Arg.(
    value & opt float 4.0
    & info [ "escalate" ] ~docv:"K"
        ~doc:"Per-retry budget multiplier (attempt i runs under budget x \
              K^(i-1)).")

let validate_policy max_attempts escalate =
  if max_attempts < 1 then begin
    Printf.eprintf "--max-attempts must be >= 1\n";
    exit 2
  end;
  if escalate < 1.0 then begin
    Printf.eprintf "--escalate must be >= 1.0\n";
    exit 2
  end

(* shared solver-backend choice (certain, batch, serve) *)
module Sat_backend = Certdb_sat.Backend

let backend_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("csp", Sat_backend.Csp);
             ("sat", Sat_backend.Sat);
             ("auto", Sat_backend.Auto);
           ])
        Sat_backend.Csp
    & info [ "backend" ] ~docv:"B"
        ~doc:
          "Solver backend for Boolean certainty: csp (backtracking hom \
           search, the default), sat (CNF + CDCL with symmetry breaking \
           over interchangeable nulls), or auto (route per instance on the \
           planner's certificates).  Whatever the primary backend, budget \
           exhaustion crosses to the other one before degrading.")

let certain_cmd =
  let run query degrade explain jobs backend nodes backtracks timeout_ms
      max_attempts escalate d =
    if jobs < 1 then begin
      Printf.eprintf "--jobs must be >= 1\n";
      exit 2
    end;
    let d = parse_instance_arg d in
    let q = parse_cq query in
    (* --explain: root a trace around the evaluation and print its span
       tree (route, rung, attempts, timings) as one JSON line on stderr,
       leaving stdout untouched *)
    let code, tid =
      Trace.with_trace "certdb.certain" @@ fun tid ->
      let code =
    if not degrade then begin
      (* the planner routes on the query's certificates: non-Boolean
         CQs/UCQs to naive evaluation (Theorem 4), Boolean CQs to the
         cheapest sound decision procedure (acyclic join / bounded-width
         DP / hom ladder) — the routed answer equals naive evaluation's *)
      if q.Certdb_query.Cq.head <> [] then begin
        let u = Certdb_query.Ucq.make [ q ] in
        print_instance (Certdb_analysis.Plan.certain_answers u d);
        0
      end
      else begin
        let b =
          match Certdb_analysis.Plan.certain ~jobs ~backend q d with
          | `Exact b | `Lower_bound b -> b
        in
        print_instance
          (if b then Instance.add_fact Instance.empty "ans" []
           else Instance.empty);
        0
      end
    end
    else if q.Certdb_query.Cq.head <> [] then begin
      Printf.eprintf
        "--degrade applies to Boolean queries (empty head): the graded \
         answer is a single certified truth value\n";
      2
    end
    else begin
      validate_policy max_attempts escalate;
      let limits =
        Certdb_csp.Engine.Limits.make ?nodes ?backtracks ?timeout_ms ()
      in
      let policy =
        Certdb_csp.Resilient.Policy.make ~max_attempts ~escalation:escalate ()
      in
      match
        Certdb_query.Certain.certain_cq_resilient ~policy ~limits ~backend q d
      with
      | `Exact b ->
        Printf.printf "exact: %b\n" b;
        if b then 0 else 1
      | `Lower_bound b ->
        Printf.printf "lower-bound: %b\n" b;
        if b then 0 else 1
    end
      in
      (code, tid)
    in
    if explain then
      prerr_endline (Obs.Json.to_string (Trace.summary tid));
    code
  in
  let query =
    Arg.(
      required
      & opt (some string) None
      & info [ "query"; "q" ] ~docv:"CQ"
          ~doc:"Conjunctive query, e.g. 'ans(_x) :- R(_x,_y)'.")
  in
  let degrade =
    Arg.(
      value & flag
      & info [ "degrade" ]
          ~doc:
            "Boolean query only: decide certainty by the budgeted Prop. 2 \
             hom check with retries, degrading to sound naive evaluation \
             ('lower-bound: ...') instead of reporting unknown when every \
             attempt trips its budget.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the request's trace summary (plan route, ladder rung, \
             attempt count, span timings) as one JSON line on stderr.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Domains used within a single query: a cartesian-product query \
             routed to the components plan solves its independent \
             subqueries on $(docv) domains.")
  in
  let nodes =
    Arg.(
      value
      & opt (some int) None
      & info [ "node-budget" ] ~docv:"N" ~doc:"Search node budget per attempt.")
  in
  let backtracks =
    Arg.(
      value
      & opt (some int) None
      & info [ "backtrack-budget" ] ~docv:"N"
          ~doc:"Backtrack budget per attempt.")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Wall-clock deadline per attempt.")
  in
  let d = instance_pos ~pos:0 ~doc:"Incomplete instance." in
  Cmd.v
    (Cmd.info "certain"
       ~doc:
         "Certain answers of a conjunctive query by naive evaluation; with \
          --degrade, graded Boolean certainty that never answers unknown.")
    (with_stats
       Term.(
         const run $ query $ degrade $ explain $ jobs $ backend_arg $ nodes
         $ backtracks $ timeout_ms $ max_attempts_arg $ escalate_arg $ d))

(* chase *)
let split_arrow s =
  let rec find i =
    if i + 1 >= String.length s then None
    else if s.[i] = '-' && s.[i + 1] = '>' then
      Some (String.sub s 0 i, String.sub s (i + 2) (String.length s - i - 2))
    else find (i + 1)
  in
  find 0

(* "body -> head" with shared variable names meaning the same nulls: the
   head parse is seeded with the body's bindings *)
let parse_dependency_result s =
  match split_arrow (resolve_arg s) with
  | None -> Error "expected 'body -> head'"
  | Some (body_s, head_s) -> (
    match
      let body, bindings = Parse.instance body_s in
      let head, _ = Parse.instance ~bindings head_s in
      (body, head)
    with
    | pair -> Ok pair
    | exception Parse.Parse_error m -> Error m)

let parse_dependency s =
  match parse_dependency_result s with
  | Ok pair -> pair
  | Error msg ->
    Printf.eprintf "tgd parse error: %s\n" msg;
    exit 2

let parse_tgd s =
  let body, head = parse_dependency s in
  Certdb_exchange.Mapping.relational_rule ~body ~head

let parse_target_tgd s =
  let body, head = parse_dependency s in
  Certdb_exchange.Constraints.tgd ~body ~head

(* "body -> l = r": reuse the instance parser on a synthetic EQ(l, r)
   atom so both sides share the body's null bindings *)
let parse_egd_result s =
  match split_arrow (resolve_arg s) with
  | None -> Error "expected 'body -> left = right'"
  | Some (body_s, eq_s) -> (
    match String.index_opt eq_s '=' with
    | None -> Error "expected 'left = right' after ->"
    | Some i -> (
      let l = String.trim (String.sub eq_s 0 i) in
      let r =
        String.trim (String.sub eq_s (i + 1) (String.length eq_s - i - 1))
      in
      match
        let body, bindings = Parse.instance body_s in
        let eq, _ = Parse.instance ~bindings (Printf.sprintf "EQ(%s, %s)" l r) in
        match Instance.facts eq with
        | [ { args = [| left; right |]; _ } ] ->
          Certdb_exchange.Constraints.egd ~body ~left ~right
        | _ -> invalid_arg "egd: expected exactly two sides"
      with
      | egd -> Ok egd
      | exception Parse.Parse_error m -> Error m
      | exception Invalid_argument m -> Error m))

let parse_egd s =
  match parse_egd_result s with
  | Ok egd -> egd
  | Error msg ->
    Printf.eprintf "egd parse error: %s\n" msg;
    exit 2

let parse_fd_arg s =
  match Certdb_analysis.Fd.parse (resolve_arg s) with
  | Ok f -> f
  | Error msg ->
    Printf.eprintf "fd parse error: %s\n" msg;
    exit 2

let chase_cmd =
  let module Fd = Certdb_analysis.Fd in
  let run tgds target_tgds target_egds target_fds d =
    let source = parse_instance_arg d in
    let mapping = List.map parse_tgd tgds in
    let solution = Certdb_exchange.Universal.chase_relational mapping source in
    if target_tgds = [] && target_egds = [] && target_fds = [] then begin
      print_instance solution;
      0
    end
    else begin
      let fds = List.map parse_fd_arg target_fds in
      let fd_egds =
        let schema = Instance.schema solution in
        List.concat_map
          (fun (f : Fd.fd) ->
            match Schema.arity schema f.Fd.rel with
            | Some arity -> Fd.to_egds ~arity f
            | None ->
              Printf.eprintf
                "target-fd %s: relation %s not in the canonical solution\n"
                (Fd.to_string f) f.Fd.rel;
              exit 2)
          fds
      in
      let constraints =
        Certdb_exchange.Constraints.make
          ~tgds:(List.map parse_target_tgd target_tgds)
          ~egds:(List.map parse_egd target_egds @ fd_egds)
          ()
      in
      (* no explicit round cap: weakly acyclic target constraints run
         with the certified derived bound (exchange.chase.certified) *)
      match Certdb_exchange.Constraints.chase solution constraints with
      | chased ->
        print_instance chased;
        (* the chase enforced each FD as egds; validate the result
           against the certificate analysis — the verdict must not be
           "violated" (a clash would have failed the chase), and the
           grade is printed so scripts can pin it *)
        let grades =
          List.map (fun f -> (f, Fd.grade (Fd.check chased f))) fds
        in
        List.iter
          (fun (f, g) ->
            Printf.printf "target-fd %s: %s\n" (Fd.to_string f)
              (Fd.grade_name g))
          grades;
        if List.for_all (fun (_, g) -> g <> Fd.Violated) grades then 0 else 1
      | exception Certdb_exchange.Constraints.Chase_failure msg ->
        Printf.eprintf "chase failed: %s\n" msg;
        1
    end
  in
  let tgds =
    Arg.(
      non_empty
      & opt_all string []
      & info [ "tgd" ] ~docv:"TGD"
          ~doc:
            "Source-to-target dependency, e.g. 'S(_x,_y) -> T(_x,_z); \
             T(_z,_y)'.  Repeatable.")
  in
  let target_tgds =
    Arg.(
      value
      & opt_all string []
      & info [ "target-tgd" ] ~docv:"TGD"
          ~doc:
            "Target tgd chased into the canonical solution.  Weakly \
             acyclic sets run with the certified round bound.  Repeatable.")
  in
  let target_egds =
    Arg.(
      value
      & opt_all string []
      & info [ "target-egd" ] ~docv:"EGD"
          ~doc:
            "Target egd, e.g. 'T(_x,_y); T(_x,_z) -> _y = _z'.  Repeatable.")
  in
  let target_fds =
    Arg.(
      value
      & opt_all string []
      & info [ "target-fd" ] ~docv:"FD"
          ~doc:
            "Target functional dependency, e.g. 'T: 1 -> 2' (1-based \
             positions), enforced as egds and validated against its \
             certificate after the chase.  Repeatable.")
  in
  let d = instance_pos ~pos:0 ~doc:"Source instance." in
  Cmd.v
    (Cmd.info "chase"
       ~doc:
         "Chase a source instance: canonical universal solution, \
          optionally followed by the target-constraint chase.")
    (with_stats
       Term.(const run $ tgds $ target_tgds $ target_egds $ target_fds $ d))

(* certain-fo: Boolean FO certainty *)
let certain_fo_cmd =
  let run query mode d =
    let d = parse_instance_arg d in
    let f =
      try Certdb_query.Fo_parse.formula (resolve_arg query)
      with Certdb_query.Fo_parse.Parse_error msg ->
        Printf.eprintf "formula parse error: %s\n" msg;
        exit 2
    in
    let result =
      match mode with
      | `Naive -> Certdb_query.Certain.naive_holds f d
      | `Cwa -> Certdb_query.Certain.certain_holds_cwa f d
      | `Owa ->
        if Certdb_query.Fo.is_existential f then
          Certdb_query.Certain.certain_existential f d
        else begin
          Printf.eprintf
            "owa certainty is only exact for existential sentences; use \
             --mode cwa or --mode naive\n";
          exit 2
        end
    in
    Printf.printf "%b\n" result;
    if result then 0 else 1
  in
  let query =
    Arg.(
      required
      & opt (some string) None
      & info [ "query"; "q" ] ~docv:"FO"
          ~doc:"Sentence, e.g. 'exists x. R(x,1) and not S(x)'.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("owa", `Owa); ("cwa", `Cwa); ("naive", `Naive) ]) `Owa
      & info [ "mode" ]
          ~doc:
            "owa: exact certainty for existential sentences; cwa: certainty \
             over groundings; naive: evaluate with nulls as values.")
  in
  let d = instance_pos ~pos:0 ~doc:"Incomplete instance." in
  Cmd.v
    (Cmd.info "certain-fo"
       ~doc:"Certain truth of a Boolean first-order sentence.")
    (with_stats Term.(const run $ query $ mode $ d))

(* tree commands *)
let parse_tree_arg s =
  try fst (Certdb_xml.Tree_parse.tree (resolve_arg s)) with
  | Certdb_xml.Tree_parse.Parse_error msg ->
    Printf.eprintf "tree parse error: %s\n" msg;
    exit 2

let tree_pos ~pos:p ~doc =
  Arg.(required & pos p (some string) None & info [] ~docv:"TREE" ~doc)

let tree_leq_cmd =
  let run t1 t2 =
    let t1 = parse_tree_arg t1 and t2 = parse_tree_arg t2 in
    let result = Certdb_xml.Tree_hom.leq t1 t2 in
    Printf.printf "%b\n" result;
    if result then 0 else 1
  in
  let t1 = tree_pos ~pos:0 ~doc:"Less informative tree." in
  let t2 = tree_pos ~pos:1 ~doc:"More informative tree." in
  Cmd.v
    (Cmd.info "tree-leq"
       ~doc:"Information ordering on XML trees (homomorphism existence).")
    (with_stats Term.(const run $ t1 $ t2))

let tree_glb_cmd =
  let run ts =
    let trees = List.map parse_tree_arg ts in
    (match Certdb_xml.Tree_glb.family_reduced trees with
    | Some g -> print_endline (Certdb_xml.Tree_parse.to_string g)
    | None -> print_endline "(no glb: root labels differ)");
    0
  in
  let ts = Arg.(non_empty & pos_all string [] & info [] ~docv:"TREE") in
  Cmd.v
    (Cmd.info "tree-glb"
       ~doc:
         "Certain information (max-description) of a set of XML trees: the \
          glb in the tree class.")
    (with_stats Term.(const run $ ts))

let tree_member_cmd =
  let run t candidate =
    let t = parse_tree_arg t and candidate = parse_tree_arg candidate in
    if not (Certdb_xml.Tree.is_complete candidate) then begin
      Printf.eprintf "the second tree must be complete\n";
      2
    end
    else begin
      (* trees have treewidth 1: under the Codd interpretation the
         Theorem 6 dynamic program decides membership in PTIME *)
      let db = Certdb_xml.Tree.to_gdb t in
      let result =
        if Certdb_gdm.Gdb.codd db then
          Certdb_gdm.Membership.codd_leq db (Certdb_xml.Tree.to_gdb candidate)
        else Certdb_xml.Tree_hom.mem candidate t
      in
      Printf.printf "%b\n" result;
      if result then 0 else 1
    end
  in
  let t = tree_pos ~pos:0 ~doc:"Incomplete tree T." in
  let candidate = tree_pos ~pos:1 ~doc:"Complete candidate tree." in
  Cmd.v
    (Cmd.info "tree-member" ~doc:"Membership: is the complete tree in [[T]]?")
    (with_stats Term.(const run $ t $ candidate))

(* batch: JSONL of independent budgeted problems, fanned out over a pool
   of domains (Csp.Engine.Batch).  One JSON object per input line:

     {"op":"leq","d1":"R(1,_x)","d2":"R(1,2)","node_budget":1000}
     {"op":"member","d":"R(1,_x)","r":"R(1,2)"}
     {"op":"certain","query":"ans() :- R(_x,_y)","d":"R(1,_u)"}

   Optional fields: "id" (echoed; defaults to the line index),
   "node_budget", "backtrack_budget", "timeout_ms".  Output is JSONL in
   input order regardless of --jobs, one of status sat / unsat / unknown
   (with the tripped limit as "reason") / error. *)
module Json = Obs.Json
module Engine = Certdb_csp.Engine
module Resilient = Certdb_csp.Resilient
module Wire = Certdb_service.Wire
module Server = Certdb_service.Server
module Supervisor = Certdb_service.Supervisor
module Client = Certdb_service.Client

let batch_cmd =
  let run jobs max_attempts escalate on_error backend file =
    validate_policy max_attempts escalate;
    let policy =
      Resilient.Policy.make ~max_attempts ~escalation:escalate
        ~restart_seed:None ~propagate_first:false ()
    in
    let cancel, failure_policy =
      match on_error with
      | `Continue -> (None, Engine.Batch.Continue)
      | `Fail_fast ->
        let c = Engine.Cancel.create () in
        (Some c, Engine.Batch.Fail_fast c)
    in
    (* Stream the input line by line instead of slurping the file: lines
       are parsed in the calling domain — the parser mints fresh nulls
       and ids deterministically — and solved in input-order chunks on
       the worker pool, so memory is bounded by the chunk size, not the
       file size.  Under --on-error fail-fast every task's limits carry
       the shared cancel token: in-flight searches stop early, and once
       the token is tripped later chunks drain as skipped rows. *)
    let process ic =
      let chunk_size = max 64 (8 * jobs) in
      let saw_bad = ref false in
      let next_idx = ref 0 in
      let flush_chunk pending =
        let tasks = List.rev pending in
        let results =
          Engine.Batch.map_result ~jobs ~on_error:failure_policy
            (Wire.run_task ~policy) tasks
        in
        List.iter2
          (fun (idx, (id, op, _)) result ->
            let row =
              match result with
              | Ok row -> row
              | Error (Engine.Batch.Raised { exn; _ }) ->
                Wire.row ~idx ~id ~op
                  (Wire.error_fields (Wire.describe_exn exn))
              | Error Engine.Batch.Skipped ->
                Wire.row ~idx ~id ~op [ ("status", Json.String "skipped") ]
            in
            (match Json.member "status" row with
            | Some (Json.String ("error" | "skipped")) -> saw_bad := true
            | _ -> ());
            print_endline (Json.to_string row))
          tasks results
      in
      let rec loop pending n =
        match In_channel.input_line ic with
        | None -> if pending <> [] then flush_chunk pending
        | Some line ->
          let line = String.trim line in
          if line = "" then loop pending n
          else begin
            let idx = !next_idx in
            incr next_idx;
            let task = (idx, Wire.parse_task ?cancel ~backend idx line) in
            if n + 1 >= chunk_size then begin
              flush_chunk (task :: pending);
              loop [] 0
            end
            else loop (task :: pending) (n + 1)
          end
      in
      loop [] 0;
      if !saw_bad then 1 else 0
    in
    if file = "-" then process stdin
    else
      match In_channel.with_open_text file process with
      | code -> code
      | exception Sys_error msg ->
        Printf.eprintf "cannot read %s: %s\n" file msg;
        exit 2
  in
  let jobs =
    Arg.(
      value
      & opt int (Engine.Batch.default_jobs ())
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains (default: the recommended domain count).")
  in
  let on_error =
    Arg.(
      value
      & opt (enum [ ("continue", `Continue); ("fail-fast", `Fail_fast) ]) `Continue
      & info [ "on-error" ] ~docv:"POLICY"
          ~doc:
            "continue: isolate task failures as structured error records; \
             fail-fast: stop popping tasks after the first failure and \
             cancel in-flight searches (unstarted tasks are reported as \
             skipped).")
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"JSONL input file, or - for stdin.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Solve a JSONL stream of independent budgeted problems on a \
          domain pool; output is JSONL in input order.")
    (with_stats
       Term.(
         const run $ jobs $ max_attempts_arg $ escalate_arg $ on_error
         $ backend_arg $ file))

(* serve: the long-running query server (lib/service).  JSONL over stdio
   or a Unix socket; named database registry; semantic cache keyed by
   core-canonical query form x database fingerprint. *)
(* --metrics-file: a writer domain re-renders the OpenMetrics exposition
   every interval, writing to a temp file and renaming over the target so
   a scraper never reads a torn exposition *)
let write_metrics_file path =
  let body = Openmetrics.expose (Obs.snapshot ()) in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc body;
  close_out oc;
  Sys.rename tmp path

let start_metrics_writer ~path ~interval_ms =
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let rec loop () =
          if not (Atomic.get stop) then begin
            write_metrics_file path;
            (* sleep in short slices so shutdown stays prompt *)
            let remaining = ref (Float.max interval_ms 1.0) in
            while (not (Atomic.get stop)) && !remaining > 0.0 do
              let slice = Float.min 50.0 !remaining in
              Unix.sleepf (slice /. 1000.0);
              remaining := !remaining -. slice
            done;
            loop ()
          end
        in
        loop ();
        (* one final exposition so the file reflects the full run *)
        write_metrics_file path)
  in
  fun () ->
    Atomic.set stop true;
    Domain.join writer

let serve_cmd =
  let run socket cache_capacity no_cache canon_budget jobs backend
      max_attempts escalate nodes backtracks timeout_ms slow_ms metrics_file
      metrics_interval_ms trace_buffer preload conns queue_capacity
      request_timeout_ms max_line_bytes backlog retry_after_ms =
    validate_policy max_attempts escalate;
    Option.iter Trace.set_capacity trace_buffer;
    let policy =
      Resilient.Policy.make ~max_attempts ~escalation:escalate ()
    in
    let default_limits = Engine.Limits.make ?nodes ?backtracks ?timeout_ms () in
    let config =
      Server.Config.make
        ~cache_capacity:(if no_cache then 0 else cache_capacity)
        ~canon_budget ~policy ~default_limits ~jobs ?slow_ms ~backend ()
    in
    let server = Server.create ~config () in
    List.iter
      (fun spec ->
        match String.index_opt spec '=' with
        | None ->
          Printf.eprintf "--load expects NAME=INSTANCE\n";
          exit 2
        | Some i ->
          let name = String.sub spec 0 i in
          let source =
            resolve_arg (String.sub spec (i + 1) (String.length spec - i - 1))
          in
          (match Server.load server ~name ~source with
          | Ok _ -> ()
          | Error m ->
            Printf.eprintf "--load %s: parse error: %s\n" name m;
            exit 2))
      preload;
    let stop_metrics =
      Option.map
        (fun path ->
          start_metrics_writer ~path ~interval_ms:metrics_interval_ms)
        metrics_file
    in
    Fun.protect
      ~finally:(fun () -> Option.iter (fun stop -> stop ()) stop_metrics)
      (fun () ->
        match socket with
        | None -> (
          match Server.serve ~max_line_bytes server stdin stdout with
          | `Shutdown | `Eof -> ())
        | Some path ->
          let config =
            Supervisor.Config.make ~conns ~queue_capacity ?request_timeout_ms
              ~max_line_bytes ~backlog ~retry_after_ms ()
          in
          Supervisor.run ~config server ~path);
    0
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix domain socket instead of stdio: concurrent \
             connections on a supervised worker pool with admission \
             control; a client's shutdown request (or SIGTERM) drains \
             the server.")
  in
  let conns =
    Arg.(
      value & opt int 4
      & info [ "conns" ] ~docv:"N"
          ~doc:"Concurrent connections (worker domains) on the socket.")
  in
  let queue_capacity =
    Arg.(
      value & opt int 16
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:
            "Accepted connections allowed to wait for a worker; beyond \
             it, new connections are shed with an overloaded row \
             carrying retry_after_ms.")
  in
  let request_timeout_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "request-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-request read deadline on socket connections; a \
             connection idle past it is answered with an error row and \
             closed, reclaiming its worker.")
  in
  let max_line_bytes =
    Arg.(
      value
      & opt int Wire.default_max_line_bytes
      & info [ "max-line-bytes" ] ~docv:"N"
          ~doc:
            "Request line cap; longer lines are drained (never buffered \
             whole) and answered with an error row.")
  in
  let backlog =
    Arg.(
      value & opt int 64
      & info [ "backlog" ] ~docv:"N"
          ~doc:"listen(2) backlog of the Unix socket.")
  in
  let retry_after_ms =
    Arg.(
      value & opt float 50.0
      & info [ "retry-after-ms" ] ~docv:"MS"
          ~doc:
            "Base retry_after_ms hint on overloaded (shed) rows; the \
             hint grows with queue pressure.")
  in
  let cache_capacity =
    Arg.(
      value & opt int 1024
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Semantic cache entries before LRU eviction.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Disable the semantic cache entirely.")
  in
  let canon_budget =
    Arg.(
      value
      & opt int Certdb_service.Canon.default_budget
      & info [ "canon-budget" ] ~docv:"N"
          ~doc:
            "Query-canonicalisation search budget; queries exceeding it \
             bypass the cache.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Engine.Batch.default_jobs ())
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains for the batch verb.")
  in
  let nodes =
    Arg.(
      value
      & opt (some int) None
      & info [ "node-budget" ] ~docv:"N"
          ~doc:"Default per-request search node budget.")
  in
  let backtracks =
    Arg.(
      value
      & opt (some int) None
      & info [ "backtrack-budget" ] ~docv:"N"
          ~doc:"Default per-request backtrack budget.")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Default per-request wall-clock deadline.")
  in
  let preload =
    Arg.(
      value
      & opt_all string []
      & info [ "load" ] ~docv:"NAME=INSTANCE"
          ~doc:
            "Preload a named database before serving ('@file' reads the \
             instance from a file).  Repeatable.")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-query threshold: any request at least this slow logs a \
             JSON row with its full span tree to stderr.")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-file" ] ~docv:"PATH"
          ~doc:
            "Periodically write an OpenMetrics text exposition of all \
             metrics to PATH (atomic rename), for file-based scrapers.")
  in
  let metrics_interval_ms =
    Arg.(
      value & opt float 2000.0
      & info [ "metrics-interval-ms" ] ~docv:"MS"
          ~doc:"Interval between --metrics-file writes.")
  in
  let trace_buffer =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-buffer" ] ~docv:"N"
          ~doc:
            "Capacity of the trace ring buffer (completed spans retained \
             for the trace verb); default 8192.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the query server: JSONL requests (load / unload / query / \
          batch / stats / trace / metrics / ping / shutdown) over stdio \
          or a supervised concurrent Unix socket, with a semantic cache \
          keyed by core-canonical query form and database fingerprint.")
    (with_stats
       Term.(
         const run $ socket $ cache_capacity $ no_cache $ canon_budget $ jobs
         $ backend_arg $ max_attempts_arg $ escalate_arg $ nodes $ backtracks
         $ timeout_ms
         $ slow_ms $ metrics_file $ metrics_interval_ms $ trace_buffer
         $ preload $ conns $ queue_capacity $ request_timeout_ms
         $ max_line_bytes $ backlog $ retry_after_ms))

(* stats: observability self-test.  Runs a small fixed workload through
   every instrumented subsystem (CSP solver, relational hom search, glb,
   chase, naive evaluation, XML tree hom) and prints the snapshot; exits
   nonzero if a hot-path counter stayed at zero, so CI can use it as a
   telemetry smoke test. *)
let stats_cmd =
  let run json openmetrics =
    Obs.reset ();
    (* CSP solver: C4 -> C2 edge-preserving map (4 decisions minimum) *)
    let cycle n =
      let s =
        List.fold_left
          (fun s v -> Certdb_csp.Structure.add_node s v)
          Certdb_csp.Structure.empty
          (List.init n Fun.id)
      in
      List.fold_left
        (fun s v -> Certdb_csp.Structure.add_edge s "E" v ((v + 1) mod n))
        s (List.init n Fun.id)
    in
    ignore
      (Certdb_csp.Solver.find_hom ~source:(cycle 4) ~target:(cycle 2) ());
    ignore
      (Certdb_csp.Arc_consistency.find_hom ~source:(cycle 6) ~target:(cycle 3)
         ());
    (* relational: ordering, glb, lub on a fixed pair *)
    let d = parse_instance_arg "R(1,_x); R(_x,2)"
    and d' = parse_instance_arg "R(1,9); R(9,2)" in
    ignore (Hom.find d d');
    ignore (Glb.glb d d');
    ignore (Lub.pair d d');
    (* chase + naive evaluation *)
    let tgd = parse_tgd "S(_x,_y) -> T(_x,_z); T(_z,_y)" in
    ignore
      (Certdb_exchange.Universal.chase_relational [ tgd ]
         (parse_instance_arg "S(1,2)"));
    let q = parse_cq "ans(_x) :- R(_x,_y)" in
    ignore
      (Certdb_query.Certain.naive_eval_ucq
         (Certdb_query.Ucq.make [ q ])
         d);
    (* XML tree hom *)
    ignore
      (Certdb_xml.Tree_hom.leq
         (parse_tree_arg "r[a(_x)]")
         (parse_tree_arg "r[a(7)]"));
    let m = Obs.snapshot () in
    let lint_ok =
      if openmetrics then begin
        (* print the exposition and self-lint it, so CI rejects invalid
           or duplicate metric names the moment they appear *)
        let body = Openmetrics.expose m in
        print_string body;
        match Openmetrics.lint body with
        | Ok () -> true
        | Error msg ->
          Printf.eprintf "openmetrics lint: %s\n" msg;
          false
      end
      else begin
        if json then print_endline (Obs.json_string m)
        else Format.printf "%a%!" Obs.pp_metrics m;
        true
      end
    in
    let nonzero name =
      match Obs.find_counter m name with Some n when n > 0 -> true | _ -> false
    in
    let required =
      [
        "csp.solver.decisions"; "csp.ac3.revisions"; "rel.hom.nodes";
        "rel.glb.pairs"; "rel.lub.pairs"; "exchange.chase.steps";
        "query.naive_evals"; "xml.tree_hom.searches"; "gdm.ghom.nodes";
      ]
    in
    let missing = List.filter (fun n -> not (nonzero n)) required in
    if missing <> [] then
      Printf.eprintf "self-test: counters stayed at zero: %s\n"
        (String.concat ", " missing);
    if missing = [] && lint_ok then 0 else 1
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the snapshot as JSON instead of text.")
  in
  let openmetrics =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:
            "Print the snapshot as an OpenMetrics text exposition and \
             lint it (exit 1 on invalid or duplicate metric names).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Observability self-test: run a fixed workload through the \
          instrumented hot paths and print the metrics snapshot.")
    Term.(const run $ json $ openmetrics)

(* trace: export the span ring buffer as Chrome trace-event JSON — load
   the output in about:tracing or Perfetto.  Either replay a JSONL
   request file in-process (the trace is produced locally) or ask a
   running server for its buffer over the Unix socket. *)
let trace_cmd =
  let dump_replay file =
    Trace.clear ();
    let server = Server.create () in
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let idx = ref 0 in
        try
          while true do
            let line = input_line ic in
            incr idx;
            if String.trim line <> "" then
              ignore (Server.handle_line server ~idx:!idx line)
          done
        with End_of_file -> ());
    Ok (Json.to_string (Trace.chrome (Trace.events ())))
  in
  let dump_socket path =
    (* the retrying client: timeouts, reconnects and shed rows are
       handled below the verb *)
    let client = Client.connect ~path () in
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () ->
        match Client.request client [ ("op", Json.String "trace") ] with
        | Error m -> Error (Printf.sprintf "%s: %s" path m)
        | Ok j -> (
          match Json.member "chrome" j with
          | Some chrome -> Ok (Json.to_string chrome)
          | None ->
            Error
              (Printf.sprintf "response carries no trace: %s"
                 (Json.to_string j))))
  in
  let dump_run replay socket out =
    let result =
      match (replay, socket) with
      | Some file, None -> dump_replay file
      | None, Some path -> dump_socket path
      | _ -> Error "pass exactly one of --replay or --socket"
    in
    match result with
    | Error msg ->
      Printf.eprintf "trace dump: %s\n" msg;
      1
    | Ok body -> (
      match out with
      | None ->
        print_endline body;
        0
      | Some path ->
        let oc = open_out path in
        output_string oc body;
        output_char oc '\n';
        close_out oc;
        0)
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a JSONL request file through an in-process server and \
             dump the resulting trace.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Fetch the trace buffer from a running server over its Unix \
             socket (sends the trace verb).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the JSON to FILE instead of stdout.")
  in
  let dump_cmd =
    Cmd.v
      (Cmd.info "dump"
         ~doc:
           "Emit the span ring buffer as Chrome trace-event JSON \
            (about:tracing / Perfetto).")
      Term.(const dump_run $ replay $ socket $ out)
  in
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Request-scoped tracing: export recorded span trees.")
    [ dump_cmd ]

(* ping: liveness probe against a running serve --socket, through the
   retrying client, so it doubles as a health check under overload *)
let ping_cmd =
  let run socket timeout_ms retries =
    let config =
      Client.Config.make ~request_timeout_ms:timeout_ms ~max_retries:retries
        ()
    in
    let client = Client.connect ~config ~path:socket () in
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () ->
        match Client.ping client with
        | Ok ms ->
          Printf.printf "pong %.1f ms\n" ms;
          0
        | Error m ->
          Printf.eprintf "ping: %s\n" m;
          1)
  in
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket of the server.")
  in
  let timeout_ms =
    Arg.(
      value & opt float 2000.0
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Per-attempt response deadline.")
  in
  let retries =
    Arg.(
      value & opt int 5
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retries beyond the first attempt.")
  in
  Cmd.v
    (Cmd.info "ping"
       ~doc:
         "Round-trip liveness probe against a running server (exit 0 on \
          pong, 1 when unreachable after the retry budget).")
    Term.(const run $ socket $ timeout_ms $ retries)

(* analyze: static classification with machine-checkable certificates,
   plus the planner's routing decision.  Exit code: 0 when every analyzed
   class is positive (safe / terminating), 1 when some class is negative
   (unsafe FO, diverging tgd set), 2 on parse errors. *)
module Safety = Certdb_analysis.Safety
module Monotone = Certdb_analysis.Monotone
module Hypergraph = Certdb_analysis.Hypergraph
module Wa = Certdb_analysis.Wa
module Plan = Certdb_analysis.Plan
module Fd = Certdb_analysis.Fd
module Independence = Certdb_analysis.Independence
module Footprint = Certdb_analysis.Footprint

let pos_str p = Format.asprintf "%a" Wa.pp_position p
let json_strings l = Json.List (List.map (fun s -> Json.String s) l)

(* ---- fd / independence / footprint certificate reports ---------------- *)

let tuple_str t =
  "(" ^ String.concat ", " (List.map Value.to_string (Array.to_list t)) ^ ")"

let value_pair_json (a, b) =
  json_strings [ Value.to_string a; Value.to_string b ]

let fd_cert_json = function
  | Fd.All_pairs_safe { pairs; x_incompatible; y_forced } ->
    Json.Obj
      [
        ("kind", Json.String "all-pairs-safe");
        ("pairs", Json.Int pairs);
        ("x_incompatible", Json.Int x_incompatible);
        ("y_forced", Json.Int y_forced);
      ]
  | Fd.Completion_exists { merges } ->
    Json.Obj
      [
        ("kind", Json.String "completion-exists");
        ("merges", Json.List (List.map value_pair_json merges));
      ]
  | Fd.Violating_pair v ->
    Json.Obj
      [
        ("kind", Json.String "violating-pair");
        ("tuple1", Json.String (tuple_str v.Fd.v_tuple1));
        ("tuple2", Json.String (tuple_str v.Fd.v_tuple2));
        ("position", Json.Int (v.Fd.v_position + 1));
        ("unifier", Json.List (List.map value_pair_json v.Fd.v_unifier));
      ]
  | Fd.Forced_clash { chain; left; right } ->
    Json.Obj
      [
        ("kind", Json.String "forced-clash");
        ("left", Json.String (Value.to_string left));
        ("right", Json.String (Value.to_string right));
        ("chain", Json.Int (List.length chain));
      ]

(* the three-valued verdict as JSON fields, shared by both families *)
let graded_json cert_json = function
  | Fd.Certainly_satisfies c ->
    [ ("grade", Json.String "certain"); ("certificate", cert_json c) ]
  | Fd.Possibly_satisfies { sat; falsified } ->
    [
      ("grade", Json.String "possible");
      ("sat", cert_json sat);
      ("falsified", cert_json falsified);
    ]
  | Fd.Certainly_violates c ->
    [ ("grade", Json.String "violated"); ("certificate", cert_json c) ]

let fd_report d fds =
  let rows =
    List.map
      (fun f ->
        let v = Fd.check d f in
        (f, v, Fd.grade v))
      fds
  in
  ( List.for_all (fun (_, _, g) -> g <> Fd.Violated) rows,
    String.concat "\n"
      (List.map
         (fun (f, _, g) ->
           Printf.sprintf "fd %s: %s" (Fd.to_string f) (Fd.grade_name g))
         rows),
    ( "fds",
      Json.List
        (List.map
           (fun (f, v, _) ->
             Json.Obj
               (("fd", Json.String (Fd.to_string f))
               :: graded_json fd_cert_json v))
           rows) ) )

let ind_cert_json = function
  | Independence.Product_holds { x_blocks; y_blocks; rows; canonical } ->
    Json.Obj
      [
        ("kind", Json.String "product-holds");
        ("x_blocks", Json.Int x_blocks);
        ("y_blocks", Json.Int y_blocks);
        ("rows", Json.Int rows);
        ("canonical", Json.Int canonical);
      ]
  | Independence.Missing_combination { m_x; m_y; m_valuation } ->
    Json.Obj
      [
        ("kind", Json.String "missing-combination");
        ("x", Json.String (tuple_str m_x));
        ("y", Json.String (tuple_str m_y));
        ("valuation", Json.List (List.map value_pair_json m_valuation));
      ]

let independence_report d atoms =
  let rows =
    List.map
      (fun a ->
        let v = Independence.check d a in
        (a, v, Fd.grade v))
      atoms
  in
  ( List.for_all (fun (_, _, g) -> g <> Fd.Violated) rows,
    String.concat "\n"
      (List.map
         (fun (a, _, g) ->
           Printf.sprintf "independence %s: %s" (Independence.to_string a)
             (Fd.grade_name g))
         rows),
    ( "independence",
      Json.List
        (List.map
           (fun (a, v, _) ->
             Json.Obj
               (("atom", Json.String (Independence.to_string a))
               :: graded_json ind_cert_json v))
           rows) ) )

let footprint_report ?constraints q =
  let fp = Footprint.of_cq q in
  let closed = Option.map (fun c -> Footprint.close_under_tgds c fp) constraints in
  let positions_json = function
    | Footprint.All -> Json.String "*"
    | Footprint.Only ps ->
      Json.List (List.map (fun p -> Json.Int (p + 1)) ps)
  in
  ( true,
    "footprint: " ^ Footprint.to_key fp
    ^ (match closed with
      | Some c -> "\nfootprint closed under tgds: " ^ Footprint.to_key c
      | None -> ""),
    ( "footprint",
      Json.Obj
        ([
           ( "rels",
             Json.List
               (List.map
                  (fun (r, p) ->
                    Json.Obj
                      [
                        ("rel", Json.String r); ("positions", positions_json p);
                      ])
                  fp.Footprint.rels) );
           ( "constants",
             json_strings (List.map Value.to_string fp.Footprint.constants) );
           ("key", Json.String (Footprint.to_key fp));
         ]
        @
        match closed with
        | None -> []
        | Some c -> [ ("closed_key", Json.String (Footprint.to_key c)) ]) ) )

(* a --fds/--independence argument is a file of one constraint per line
   ('#' comments); inline text (';'-separated, @FILE indirection) also
   works, matching every other certdb argument *)
let constraint_lines s =
  let text =
    if (not (String.length s > 0 && s.[0] = '@')) && Sys.file_exists s then
      match In_channel.with_open_text s In_channel.input_all with
      | contents -> contents
      | exception Sys_error msg ->
        Printf.eprintf "cannot read %s: %s\n" s msg;
        exit 2
    else resolve_arg s
  in
  String.split_on_char '\n' text
  |> List.concat_map (String.split_on_char ';')
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let parse_fds_arg s =
  List.map
    (fun line ->
      match Fd.parse line with
      | Ok f -> f
      | Error msg ->
        Printf.eprintf "fd parse error in %S: %s\n" line msg;
        exit 2)
    (constraint_lines s)

let parse_independence_arg s =
  List.map
    (fun line ->
      match Independence.parse line with
      | Ok a -> a
      | Error msg ->
        Printf.eprintf "independence parse error in %S: %s\n" line msg;
        exit 2)
    (constraint_lines s)

let safety_report f =
  match Safety.analyze f with
  | Safety.Safe { range_restricted; derivation } ->
    ( true,
      Printf.sprintf "safety: safe (range-restricted: %s; derivation: %d steps)"
        (match range_restricted with
        | [] -> "(sentence)"
        | vs -> String.concat ", " vs)
        (List.length derivation),
      ( "safety",
        Json.Obj
          [
            ("class", Json.String "safe");
            ("range_restricted", json_strings range_restricted);
            ( "derivation",
              Json.List
                (List.map
                   (fun (s : Safety.step) ->
                     Json.Obj
                       [
                         ("formula", Json.String s.formula);
                         ("range_restricted", json_strings s.range_restricted);
                       ])
                   derivation) );
          ] ) )
  | Safety.Unsafe { variable; context } ->
    ( false,
      Printf.sprintf "safety: unsafe (variable %s escapes in '%s')" variable
        context,
      ( "safety",
        Json.Obj
          [
            ("class", Json.String "unsafe");
            ("variable", Json.String variable);
            ("context", Json.String context);
          ] ) )

let monotone_report f =
  match Monotone.analyze f with
  | Monotone.Monotone ->
    ( true,
      "monotonicity: monotone (existential-positive)",
      ("monotonicity", Json.Obj [ ("class", Json.String "monotone") ]) )
  | Monotone.Not_syntactically_monotone { construct; offender } ->
    let cname =
      match construct with
      | `Negation -> "negation"
      | `Implication -> "implication"
      | `Universal -> "universal"
    in
    ( true,
      Printf.sprintf "monotonicity: not syntactically monotone (%s in '%s')"
        cname offender,
      ( "monotonicity",
        Json.Obj
          [
            ("class", Json.String "not-syntactically-monotone");
            ("construct", Json.String cname);
            ("offender", Json.String offender);
          ] ) )

let hypergraph_report q =
  let hg = Hypergraph.analyze q in
  let width = hg.Hypergraph.width_estimate in
  match hg.Hypergraph.certificate with
  | Hypergraph.Acyclic { steps } ->
    ( true,
      Printf.sprintf
        "hypergraph: acyclic (GYO reduction: %d steps); width estimate: %d"
        (List.length steps) width,
      ( "hypergraph",
        Json.Obj
          [
            ("class", Json.String "acyclic");
            ( "gyo_steps",
              Json.List
                (List.map
                   (function
                     | Hypergraph.Remove_vertex { vertex; edge } ->
                       Json.Obj
                         [
                           ("step", Json.String "remove-vertex");
                           ("vertex", Json.String vertex);
                           ("edge", Json.Int edge);
                         ]
                     | Hypergraph.Absorb { edge; into } ->
                       Json.Obj
                         [
                           ("step", Json.String "absorb");
                           ("edge", Json.Int edge);
                           ("into", Json.Int into);
                         ])
                   steps) );
            ("width_estimate", Json.Int width);
          ] ),
      hg )
  | Hypergraph.Cyclic { residual } ->
    ( true,
      Printf.sprintf "hypergraph: cyclic (residual: %s); width estimate: %d"
        (String.concat ", "
           (List.map
              (fun (i, vs) ->
                Printf.sprintf "#%d{%s}" i (String.concat "," vs))
              residual))
        width,
      ( "hypergraph",
        Json.Obj
          [
            ("class", Json.String "cyclic");
            ( "residual",
              Json.List
                (List.map
                   (fun (i, vs) ->
                     Json.Obj
                       [ ("atom", Json.Int i); ("vars", json_strings vs) ])
                   residual) );
            ("width_estimate", Json.Int width);
          ] ),
      hg )

let plan_report q =
  let dec = Plan.route_cq q in
  let route = Plan.route_to_string dec.Plan.route in
  ( true,
    "plan: " ^ route,
    ("plan", Json.Obj [ ("route", Json.String route) ]) )

let wa_report ?instance c =
  match Wa.analyze ?instance c with
  | Wa.Terminates { round_bound; max_rank; ranks } ->
    ( true,
      Printf.sprintf
        "weak-acyclicity: terminates (max rank %d, round bound %d, %d \
         positions)"
        max_rank round_bound (List.length ranks),
      ( "weak_acyclicity",
        Json.Obj
          [
            ("class", Json.String "terminates");
            ("max_rank", Json.Int max_rank);
            ("round_bound", Json.Int round_bound);
            ( "ranks",
              Json.Obj
                (List.map (fun (p, r) -> (pos_str p, Json.Int r)) ranks) );
          ] ) )
  | Wa.Diverges { cycle; special = u, v } ->
    ( false,
      Printf.sprintf
        "weak-acyclicity: diverges (special edge %s -> %s; cycle: %s)"
        (pos_str u) (pos_str v)
        (String.concat " -> " (List.map pos_str cycle)),
      ( "weak_acyclicity",
        Json.Obj
          [
            ("class", Json.String "diverges");
            ("special", json_strings [ pos_str u; pos_str v ]);
            ("cycle", json_strings (List.map pos_str cycle));
          ] ) )

let parse_formula_arg s =
  try Certdb_query.Fo_parse.formula (resolve_arg s)
  with Certdb_query.Fo_parse.Parse_error msg ->
    Printf.eprintf "formula parse error: %s\n" msg;
    exit 2

(* the shipped example certificates (mirrored in examples/analyze/ and
   exercised by the cram tests): re-verify that each classifier still
   produces the expected class, and that the planner's routed answer
   agrees with the naive oracle on a routed instance *)
let analyze_self_test () =
  let fo = Certdb_query.Fo_parse.formula in
  let dep s = parse_target_tgd s in
  let constraints ts = Certdb_exchange.Constraints.make ~tgds:ts () in
  let fd_str s =
    match Fd.parse s with Ok f -> f | Error m -> failwith m
  in
  let ind_str s =
    match Independence.parse s with Ok a -> a | Error m -> failwith m
  in
  let checks =
    [
      ( "safe formula is Safe",
        lazy
          (match Safety.analyze (fo "exists x. R(x) and not S(x)") with
          | Safety.Safe _ -> true
          | Safety.Unsafe _ -> false) );
      ( "unrestricted variable is Unsafe with the culprit",
        lazy
          (match Safety.analyze (fo "exists x, y. R(x)") with
          | Safety.Unsafe { variable = "y"; _ } -> true
          | _ -> false) );
      ( "existential-positive formula is Monotone",
        lazy (Monotone.analyze (fo "exists x. R(x) or S(x)") = Monotone.Monotone) );
      ( "negation reported as the offender",
        lazy
          (match Monotone.analyze (fo "exists x. R(x) and not S(x)") with
          | Monotone.Not_syntactically_monotone { construct = `Negation; _ } ->
            true
          | _ -> false) );
      ( "path CQ is GYO-acyclic and routed to the acyclic join",
        lazy
          (let q = parse_cq "ans() :- R(_x,_y), S(_y,_z)" in
           match
             ((Hypergraph.analyze q).Hypergraph.certificate, Plan.route_cq q)
           with
           | Hypergraph.Acyclic _, { Plan.route = Plan.Acyclic_join; _ } ->
             true
           | _ -> false) );
      ( "triangle CQ is cyclic with a residual certificate",
        lazy
          (let q = parse_cq "ans() :- R(_x,_y), R(_y,_z), R(_z,_x)" in
           match (Hypergraph.analyze q).Hypergraph.certificate with
           | Hypergraph.Cyclic { residual = _ :: _ } -> true
           | _ -> false) );
      ( "weakly acyclic tgd set terminates with a positive bound",
        lazy
          (match Wa.analyze (constraints [ dep "R(_x,_y) -> S(_y,_z)" ]) with
          | Wa.Terminates { round_bound; _ } -> round_bound > 0
          | Wa.Diverges _ -> false) );
      ( "diverging tgd set yields a special-edge cycle",
        lazy
          (match Wa.analyze (constraints [ dep "R(_x,_y) -> R(_y,_z)" ]) with
          | Wa.Diverges { special = ("R", _), ("R", _); cycle = _ :: _ } ->
            true
          | _ -> false) );
      ( "planner-routed certainty agrees with the naive oracle",
        lazy
          (let q = parse_cq "ans() :- R(_x,_y), R(_y,_x)" in
           let d = parse_instance_arg "R(1,2); R(2,1); R(3,_u)" in
           let routed =
             match Plan.certain q d with `Exact b | `Lower_bound b -> b
           in
           routed = Certdb_query.Certain.certain_cq_via_naive q d) );
      ( "strongly satisfied fd is certain and agrees with the oracle",
        lazy
          (let d = parse_instance_arg "R(1,2); R(3,_x)" in
           let f = fd_str "R: 1 -> 2" in
           Fd.grade (Fd.check d f) = Fd.Certain && Fd.brute_force d f = Fd.Certain) );
      ( "weakly-but-not-strongly satisfied fd is possible, with witnesses",
        lazy
          (let d = parse_instance_arg "R(1,_x); R(1,3)" in
           let f = fd_str "R: 1 -> 2" in
           match Fd.check d f with
           | Fd.Possibly_satisfies
               {
                 sat = Fd.Completion_exists _;
                 falsified = Fd.Violating_pair _;
               } ->
             Fd.brute_force d f = Fd.Possible
           | _ -> false) );
      ( "constant-clashing fd is violated with a forced-equality chain",
        lazy
          (let d = parse_instance_arg "R(1,2); R(1,3)" in
           let f = fd_str "R: 1 -> 2" in
           match Fd.check d f with
           | Fd.Certainly_violates (Fd.Forced_clash _) ->
             Fd.brute_force d f = Fd.Violated
           | _ -> false) );
      ( "fd verdicts agree with the completion oracle on random tables",
        lazy
          (let ok = ref true in
           for seed = 0 to 14 do
             let d =
               Codd.random_naive ~seed
                 ~schema:[ ("R", 2) ]
                 ~facts:4 ~null_prob:0.4 ~domain:3 ~null_pool:3 ()
             in
             List.iter
               (fun f ->
                 if Fd.grade (Fd.check d f) <> Fd.brute_force d f then
                   ok := false)
               [ fd_str "R: 1 -> 2"; fd_str "R: 2 -> 1" ]
           done;
           !ok) );
      ( "product relation certainly satisfies its independence atom",
        lazy
          (let d = parse_instance_arg "R(1,1); R(1,2); R(2,1); R(2,2)" in
           let a = ind_str "R: 1 | 2" in
           Fd.grade (Independence.check d a) = Fd.Certain
           && Independence.brute_force d a = Fd.Certain) );
      ( "null-completable independence atom is possible, with witnesses",
        lazy
          (let d = parse_instance_arg "R(1,1); R(2,2); R(_u,_v); R(_s,_t)" in
           let a = ind_str "R: 1 | 2" in
           Fd.grade (Independence.check d a) = Fd.Possible
           && Independence.brute_force d a = Fd.Possible) );
      ( "missing combination certainly violates its independence atom",
        lazy
          (let d = parse_instance_arg "R(1,1); R(2,2)" in
           let a = ind_str "R: 1 | 2" in
           match Independence.check d a with
           | Fd.Certainly_violates (Independence.Missing_combination _) ->
             Independence.brute_force d a = Fd.Violated
           | _ -> false) );
      ( "independence verdicts agree with the completion oracle on random \
         tables",
        lazy
          (let ok = ref true in
           for seed = 0 to 14 do
             let d =
               Codd.random_naive ~seed
                 ~schema:[ ("R", 2) ]
                 ~facts:3 ~null_prob:0.4 ~domain:2 ~null_pool:2 ()
             in
             let a = ind_str "R: 1 | 2" in
             if Fd.grade (Independence.check d a) <> Independence.brute_force d a
             then ok := false
           done;
           !ok) );
      ( "footprint records constrained positions and constants",
        lazy
          (let q = parse_cq "ans(_x) :- R(_x,_y), S(_x,1)" in
           Footprint.to_key (Footprint.of_cq q) = "R[1] S[1 2] # 1") );
      ( "footprint overlap separates touched entries from disjoint ones",
        lazy
          (let fp = Footprint.of_cq (parse_cq "ans(_x) :- R(_x,_y), S(_x,1)") in
           Footprint.overlaps fp (Footprint.touch_rel "R")
           && Footprint.overlaps fp (Footprint.touch_cols "R" [ 0 ])
           && (not (Footprint.overlaps fp (Footprint.touch_cols "R" [ 1 ])))
           && not (Footprint.overlaps fp (Footprint.touch_rel "T"))) );
      ( "tgd closure pulls body relations into the footprint",
        lazy
          (let fp = Footprint.of_cq (parse_cq "ans() :- T(_x,_x)") in
           let c =
             Certdb_exchange.Constraints.make
               ~tgds:[ dep "B(_x,_y) -> T(_x,_y)" ]
               ()
           in
           let closed = Footprint.close_under_tgds c fp in
           Footprint.overlaps closed (Footprint.touch_rel "B")
           && not (Footprint.overlaps fp (Footprint.touch_rel "B"))) );
      ( "key-fd planner route stays exact against the naive oracle",
        lazy
          (let q = parse_cq "ans() :- R(_x,_y), R(_y,_z), R(_z,_x)" in
           let f = fd_str "R: 1 -> 2" in
           let d = parse_instance_arg "R(1,2); R(2,3); R(3,1); R(4,_u)" in
           match Plan.route_cq ~width_threshold:0 ~fds:[ f ] q with
           | { Plan.route = Plan.Fd_naive _; _ } -> (
             match Plan.certain ~width_threshold:0 ~fds:[ f ] q d with
             | `Exact b -> b = Certdb_query.Certain.certain_cq_via_naive q d
             | `Lower_bound _ -> false)
           | _ -> false) );
    ]
  in
  let failed =
    List.filter_map
      (fun (name, check) ->
        let ok = try Lazy.force check with _ -> false in
        Printf.printf "%s %s\n" (if ok then "ok  " else "FAIL") name;
        if ok then None else Some name)
      checks
  in
  if failed = [] then 0
  else begin
    Printf.eprintf "analyze --self-test: %d certificate(s) failed\n"
      (List.length failed);
    1
  end

let analyze_cmd =
  let run query fo tgds fds independence instance json self_test =
    if self_test then analyze_self_test ()
    else begin
      let instance = Option.map parse_instance_arg instance in
      let constraints =
        match tgds with
        | [] -> None
        | ts ->
          Some
            (Certdb_exchange.Constraints.make
               ~tgds:(List.map parse_target_tgd ts)
               ())
      in
      let need_instance what =
        match instance with
        | Some d -> d
        | None ->
          Printf.eprintf "analyze %s needs --instance\n" what;
          exit 2
      in
      let sections = ref [] in
      let add (ok, human, field) = sections := (ok, human, field) :: !sections in
      (match fo with
      | Some fs ->
        let f = parse_formula_arg fs in
        add (safety_report f);
        add (monotone_report f)
      | None -> ());
      (match query with
      | Some qs ->
        let q = parse_cq (resolve_arg qs) in
        let f = Certdb_query.Cq.to_fo q in
        add (safety_report f);
        add (monotone_report f);
        let ok, human, field, _hg = hypergraph_report q in
        add (ok, human, field);
        add (plan_report q);
        add (footprint_report ?constraints q)
      | None -> ());
      (match constraints with
      | None -> ()
      | Some c -> add (wa_report ?instance c));
      (match fds with
      | [] -> ()
      | specs ->
        let d = need_instance "--fds" in
        add (fd_report d (List.concat_map parse_fds_arg specs)));
      (match independence with
      | [] -> ()
      | specs ->
        let d = need_instance "--independence" in
        add (independence_report d (List.concat_map parse_independence_arg specs)));
      match List.rev !sections with
      | [] ->
        Printf.eprintf
          "nothing to analyze: pass --query, --fo, --tgd, --fds, or \
           --independence\n";
        2
      | sections ->
        if json then
          print_endline
            (Json.to_string
               (Json.Obj (List.map (fun (_, _, field) -> field) sections)))
        else
          List.iter (fun (_, human, _) -> print_endline human) sections;
        if List.for_all (fun (ok, _, _) -> ok) sections then 0 else 1
    end
  in
  let query =
    Arg.(
      value
      & opt (some string) None
      & info [ "query"; "q" ] ~docv:"CQ"
          ~doc:
            "Conjunctive query to classify (safety, monotonicity, \
             hypergraph, plan).")
  in
  let fo =
    Arg.(
      value
      & opt (some string) None
      & info [ "fo" ] ~docv:"FO"
          ~doc:"First-order sentence to classify (safety, monotonicity).")
  in
  let tgds =
    Arg.(
      value
      & opt_all string []
      & info [ "tgd" ] ~docv:"TGD"
          ~doc:"Tgd of the dependency set to classify (weak acyclicity). \
                Repeatable.")
  in
  let fds =
    Arg.(
      value
      & opt_all string []
      & info [ "fds" ] ~docv:"FILE"
          ~doc:
            "Functional dependencies to grade over the completions of \
             --instance, one 'R: 1 2 -> 3' per line (1-based positions, \
             '#' comments); the argument is a file name or inline \
             ';'-separated text.  Repeatable.")
  in
  let independence =
    Arg.(
      value
      & opt_all string []
      & info [ "independence" ] ~docv:"FILE"
          ~doc:
            "Independence atoms to grade over the completions of \
             --instance, one 'R: 1 | 2' per line (1-based positions, '#' \
             comments); the argument is a file name or inline \
             ';'-separated text.  Repeatable.")
  in
  let instance =
    Arg.(
      value
      & opt (some string) None
      & info [ "instance" ] ~docv:"INSTANCE"
          ~doc:
            "Instance the weak-acyclicity round bound is derived against \
             (default: empty) and that --fds / --independence verdicts \
             are graded over.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one JSON object (class + certificate per analysis).")
  in
  let self_test =
    Arg.(
      value & flag
      & info [ "self-test" ]
          ~doc:
            "Re-verify the shipped example certificates (including the \
             fd/independence brute-force cross-checks) and exit.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static analysis with certificates: FO safety and monotonicity, \
          CQ hypergraph acyclicity/treewidth with the planner route and \
          dependency footprint, weak acyclicity of tgd sets with the \
          derived chase bound, and graded fd/independence verdicts over \
          incomplete instances.")
    (with_stats
       Term.(
         const run $ query $ fo $ tgds $ fds $ independence $ instance $ json
         $ self_test))

(* sat: direct access to the SAT backend.  'sat dimacs' prints the CNF of
   the Boolean-CQ certainty instance (the same encoding the CDCL core
   solves) for cross-checking against external DIMACS solvers. *)
let sat_dimacs_cmd =
  let run query no_symmetry d =
    let d = parse_instance_arg d in
    let q = parse_cq query in
    if q.Certdb_query.Cq.head <> [] then begin
      Printf.eprintf "sat dimacs applies to Boolean queries (empty head)\n";
      2
    end
    else begin
      print_string
        (Certdb_query.Certain.certain_cq_dimacs ~symmetry:(not no_symmetry) q
           d);
      0
    end
  in
  let query =
    Arg.(
      required
      & opt (some string) None
      & info [ "query"; "q" ] ~docv:"CQ"
          ~doc:"Boolean conjunctive query, e.g. 'ans() :- R(_x,_y)'.")
  in
  let no_symmetry =
    Arg.(
      value & flag
      & info [ "no-symmetry" ]
          ~doc:
            "Omit the symmetry-breaking ordering clauses over \
             interchangeable query variables.")
  in
  let d = instance_pos ~pos:0 ~doc:"Incomplete instance." in
  Cmd.v
    (Cmd.info "dimacs"
       ~doc:
         "Print the CNF of the Prop. 2 certainty instance D_Q ⊑ D in \
          DIMACS format (selector + tuple-support variables; \
          satisfiable iff the query is certainly true, 0-ary facts \
          aside — see the zero_ok comment).")
    (with_stats Term.(const run $ query $ no_symmetry $ d))

let sat_cmd =
  Cmd.group
    (Cmd.info "sat"
       ~doc:"The SAT backend: CNF export of certainty instances.")
    [ sat_dimacs_cmd ]

let main_cmd =
  let doc = "certain answers over incomplete databases (PODS'11 reproduction)" in
  Cmd.group
    (Cmd.info "certdb" ~version:"1.0.0" ~doc)
    [
      leq_cmd; cwa_cmd; member_cmd; glb_cmd; lub_cmd; core_cmd; certain_cmd;
      certain_fo_cmd; chase_cmd; analyze_cmd; tree_leq_cmd; tree_glb_cmd;
      tree_member_cmd; batch_cmd; serve_cmd; sat_cmd; stats_cmd; trace_cmd;
      ping_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
