(* Data integration / exchange end to end (Section 5.3, Theorem 5).

   Run with:  dune exec examples/integration_pipeline.exe

   Two hospital sources are exchanged into a shared target schema with
   st-tgds; the canonical universal solution is materialized by the chase
   (with labeled nulls for the invented values), reduced to its core, and
   queried for certain answers. *)

open Certdb_values
open Certdb_relational
open Certdb_gdm
open Certdb_exchange
open Certdb_query

let section title = Format.printf "@.== %s ==@." title
let c i = Value.int i
let s name = Value.str name

let () =
  (* frontier variables of the tgds, written as nulls *)
  let x = Value.fresh_null () and y = Value.fresh_null () in
  let z = Value.fresh_null () and w = Value.fresh_null () in

  section "Sources";
  (* source 1: Visits(patient, ward); source 2: Staffed(ward, doctor) *)
  let source =
    Instance.of_list
      [ ("Visits", [ [ s "ana"; c 1 ]; [ s "bob"; c 2 ]; [ s "ana"; c 2 ] ]);
        ("Staffed", [ [ c 1; s "dr_h" ]; [ c 2; s "dr_k" ] ]) ]
  in
  Format.printf "source = %a@." Instance.pp source;

  section "Schema mapping (st-tgds)";
  (* Visits(p, w) → Treats(d, p), WorksIn(d, w)   -- invents a doctor d
     Staffed(w, d) → WorksIn(d, w) *)
  let rule1 =
    Mapping.relational_rule
      ~body:(Instance.of_list [ ("Visits", [ [ x; y ] ]) ])
      ~head:
        (Instance.of_list
           [ ("Treats", [ [ z; x ] ]); ("WorksIn", [ [ z; y ] ]) ])
  in
  let rule2 =
    Mapping.relational_rule
      ~body:(Instance.of_list [ ("Staffed", [ [ y; w ] ]) ])
      ~head:(Instance.of_list [ ("WorksIn", [ [ w; y ] ]) ])
  in
  let mapping = [ rule1; rule2 ] in
  Format.printf
    "rule 1: Visits(p,w) -> exists d. Treats(d,p), WorksIn(d,w)@.";
  Format.printf "rule 2: Staffed(w,d) -> WorksIn(d,w)@.";

  section "Chase: canonical universal solution";
  let solution = Universal.chase_relational mapping source in
  Format.printf "canonical solution = %a@." Instance.pp solution;
  let gdm_source = Encode.of_instance source in
  Format.printf "is a solution: %b@."
    (Solution.is_solution mapping ~source:gdm_source
       (Encode.of_instance solution));

  section "Universality (Theorem 5: universal solutions = lubs of M(D))";
  let samples =
    Solution.random_solutions mapping ~source:gdm_source ~seed:42 ~count:5
  in
  Format.printf "canonical maps into %d sampled solutions: %b@."
    (List.length samples)
    (Solution.is_universal_vs mapping ~source:gdm_source
       (Encode.of_instance solution) ~solutions:samples);

  section "Core solution";
  let core = Universal.core_solution_relational mapping gdm_source in
  Format.printf "core solution (%d facts, canonical had %d) = %a@."
    (Instance.cardinal core) (Instance.cardinal solution) Instance.pp core;

  section "Certain answers over the exchanged data";
  (* which patients certainly have some treating doctor? *)
  let q =
    Cq.make ~head:[ "p" ] [ ("Treats", [ Fo.Var "d"; Fo.Var "p" ]) ]
  in
  let u = Ucq.make [ q ] in
  Format.printf "Q: %a@." Cq.pp q;
  Format.printf "certain(Q, solution) = %a@." Instance.pp
    (Certain.naive_eval_ucq u solution);
  (* which (doctor, patient) pairs are certain?  None: doctors are nulls *)
  let q2 =
    Cq.make ~head:[ "d"; "p" ] [ ("Treats", [ Fo.Var "d"; Fo.Var "p" ]) ]
  in
  Format.printf "certain(%a) = %a  (doctors are invented nulls)@." Cq.pp q2
    Instance.pp (Certain.naive_eval_ucq (Ucq.make [ q2 ]) solution)
