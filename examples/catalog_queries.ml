(* Tree patterns, XML-to-XML queries and the constrained chase on one
   running scenario: integrating two bookstore feeds.

   Run with:  dune exec examples/catalog_queries.exe *)

open Certdb_values
open Certdb_relational
open Certdb_xml
open Certdb_exchange

let section title = Format.printf "@.== %s ==@." title
let c i = Value.int i

let () =
  section "An incomplete XML feed";
  let unknown_year = Value.fresh_null () in
  let unknown_author = Value.fresh_null () in
  let feed =
    Tree.node "feed"
      [
        Tree.node "book" ~data:[ c 1; c 1999 ]
          [ Tree.leaf "author" ~data:[ Value.str "ann" ] ];
        Tree.node "book" ~data:[ c 2; unknown_year ]
          [ Tree.leaf "author" ~data:[ unknown_author ] ];
      ]
  in
  Format.printf "feed = %a@." Tree.pp feed;

  section "Pattern queries (child and descendant axes)";
  let authored =
    Pattern.node ~label:"book" ~data:[ Pattern.Var "id"; Pattern.Var "yr" ]
      [ (Pattern.Child, Pattern.node ~label:"author" ~data:[ Pattern.Var "who" ] []) ]
  in
  Format.printf "certain (id, author) pairs: ";
  List.iter
    (fun tuple ->
      Format.printf "(%a) "
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
        tuple)
    (Pattern.answers authored feed ~out:[ "id"; "who" ]);
  Format.printf "@.(book 2's author is unknown: no certain answer for it)@.";

  section "An XML-to-XML query and its certain answer";
  let q =
    Xml_query.make
      ~pattern:authored
      ~template:
        (Xml_query.template "entry" ~data:[ Pattern.Var "id" ]
           [ Xml_query.template "by" ~data:[ Pattern.Var "who" ] [] ])
  in
  let naive = Xml_query.apply q feed in
  Format.printf "naive application: %a@." Tree.pp naive;
  (match Xml_query.certain_by_enumeration q feed with
  | Some certain ->
    Format.printf "glb over completions: %a@." Tree.pp certain;
    Format.printf "equivalent (Corollary 1): %b@."
      (Tree_hom.equiv certain naive)
  | None -> assert false);

  section "Shredding into relations and chasing target constraints";
  (* shred: book(id, yr) and wrote(who, id) *)
  let shredded =
    List.fold_left
      (fun acc tuple ->
        match tuple with
        | [ id; who ] -> Instance.add_fact acc "wrote" [ who; id ]
        | _ -> acc)
      (Instance.of_list
         [ ("book", [ [ c 1; c 1999 ]; [ c 2; unknown_year ] ]) ])
      (Pattern.answers authored feed ~out:[ "id"; "who" ])
  in
  let shredded =
    Instance.add_fact shredded "wrote" [ unknown_author; c 2 ]
  in
  Format.printf "shredded = %a@." Instance.pp shredded;
  (* fd: a book has one author: wrote(w1, b), wrote(w2, b) -> w1 = w2 *)
  let w1 = Value.fresh_null () and w2 = Value.fresh_null () in
  let b = Value.fresh_null () in
  let fd =
    Constraints.egd
      ~body:(Instance.of_list [ ("wrote", [ [ w1; b ]; [ w2; b ] ]) ])
      ~left:w1 ~right:w2
  in
  let constraints = Constraints.make ~egds:[ fd ] () in
  Format.printf "satisfies one-author fd: %b@."
    (Constraints.satisfies shredded constraints);
  (* add a second (conflicting-looking) report that book 2 was written by
     "bob": the chase resolves the unknown author to bob *)
  let with_report = Instance.add_fact shredded "wrote" [ Value.str "bob"; c 2 ] in
  let chased = Constraints.chase with_report constraints in
  Format.printf "after chasing with a report wrote(bob, 2): %a@."
    Instance.pp chased;
  Format.printf "the unknown author was resolved: %b@."
    (Instance.mem chased (Instance.fact "wrote" [ Value.str "bob"; c 2 ])
     && not
          (Value.Set.mem unknown_author
             (Instance.nulls (Instance.filter (fun f -> f.rel = "wrote") chased))))
