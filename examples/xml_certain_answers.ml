(* Certain information in collections of XML documents (Section 2.2 and
   [16]): max-descriptions are glbs (Theorem 1), computed level by level.

   Run with:  dune exec examples/xml_certain_answers.exe *)

open Certdb_values
open Certdb_xml

let section title = Format.printf "@.== %s ==@." title
let c i = Value.int i

let () =
  section "Two XML views of the same catalog";
  (* each source reports books with (id, year); one knows years the other
     does not *)
  let t1 =
    Tree.node "catalog"
      [
        Tree.node "book" ~data:[ c 1; c 1999 ] [ Tree.leaf "award" ];
        Tree.node "book" ~data:[ c 2; c 2004 ] [];
      ]
  in
  let t2 =
    Tree.node "catalog"
      [
        Tree.node "book" ~data:[ c 1; c 1999 ] [];
        Tree.node "book" ~data:[ c 2; c 2007 ] [];
      ]
  in
  Format.printf "T1 = %a@.T2 = %a@." Tree.pp t1 Tree.pp t2;

  section "Max-description = glb (Theorem 1)";
  (match Tree_glb.certain_information [ t1; t2 ] with
  | None -> assert false
  | Some g ->
    Format.printf "certain information: %a@." Tree.pp g;
    Format.printf "lower bound of T1: %b, of T2: %b@." (Tree_hom.leq g t1)
      (Tree_hom.leq g t2);
    (* book 1's year is certain; book 2's year merged into a null *)
    Format.printf
      "(book 1 keeps year 1999; book 2's conflicting years become a null)@.");

  section "Incomplete documents and membership";
  let n1 = Value.fresh_null () in
  let incomplete =
    Tree.node "catalog" [ Tree.node "book" ~data:[ c 1; n1 ] [] ]
  in
  Format.printf "pattern P = %a@." Tree.pp incomplete;
  Format.printf "T1 in [[P]] (as models): %b@." (Tree_hom.models t1 incomplete);
  Format.printf "P <= T1: %b@." (Tree_hom.leq incomplete t1);

  section "Sibling order destroys glbs (Prop. 6)";
  let ta, tb = Ordered_tree.prop6_pair () in
  Format.printf "T = %a,  T' = %a@." Tree.pp ta Tree.pp tb;
  let pool =
    [
      Tree.leaf "a";
      Tree.node "a" [ Tree.leaf "b" ];
      Tree.node "a" [ Tree.leaf "c" ];
      Tree.node "a" [ Tree.leaf "b"; Tree.leaf "c" ];
      Tree.node "a" [ Tree.leaf "c"; Tree.leaf "b" ];
    ]
  in
  let maxima = Ordered_tree.maximal_lower_bounds_in_pool [ ta; tb ] ~pool in
  Format.printf "maximal lower bounds among small candidates: %a@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "  and  ")
       Tree.pp)
    maxima;
  Format.printf "a glb exists in the pool: %b@."
    (Ordered_tree.has_glb_in_pool [ ta; tb ] ~pool);

  section "No least upper bounds for unordered trees (Prop. 10)";
  Format.printf "the paper's counterexample checks out: %b@."
    (Counterexamples.prop10_check ())
