(* Quickstart: naïve tables, the information ordering, certain answers.

   Run with:  dune exec examples/quickstart.exe

   Walks through Section 2.1 of the paper on its running example: an
   incomplete database D, a completion R ∈ [[D]], certain answers of a
   conjunctive query by naïve evaluation, and the same answer through the
   order-theoretic characterization (Prop. 2). *)

open Certdb_values
open Certdb_relational
open Certdb_query

let section title = Format.printf "@.== %s ==@." title

let () =
  let n1 = Value.fresh_null () in
  let n2 = Value.fresh_null () in
  let n3 = Value.fresh_null () in
  let c i = Value.int i in

  section "An incomplete database (the paper's running example)";
  (* D: (1,2,⊥1), (⊥2,⊥1,3), (⊥3,5,1) over a single ternary relation *)
  let d =
    Instance.of_list
      [ ("D", [ [ c 1; c 2; n1 ]; [ n2; n1; c 3 ]; [ n3; c 5; c 1 ] ]) ]
  in
  Format.printf "D = %a@." Instance.pp d;

  section "A completion R and the membership check R ∈ [[D]]";
  let r =
    Instance.of_list
      [ ("D",
         [ [ c 1; c 2; c 4 ]; [ c 3; c 4; c 3 ];
           [ c 5; c 5; c 1 ]; [ c 3; c 7; c 8 ] ]) ]
  in
  Format.printf "R = %a@." Instance.pp r;
  Format.printf "R in [[D]]?  %b@." (Semantics.mem r d);
  (match Hom.find d r with
   | Some h -> Format.printf "witnessing homomorphism: %a@." Valuation.pp h
   | None -> assert false);

  section "Certain answers of a conjunctive query (naive evaluation)";
  (* Q(x) :- D(x, y, z), D(z, u, v): heads of length-2 chains *)
  let q =
    Cq.make ~head:[ "x" ]
      [ ("D", [ Fo.Var "x"; Fo.Var "y"; Fo.Var "z" ]);
        ("D", [ Fo.Var "z"; Fo.Var "u"; Fo.Var "v" ]) ]
  in
  Format.printf "Q: %a@." Cq.pp q;
  let u = Ucq.make [ q ] in
  let naive = Certain.naive_eval_ucq u d in
  Format.printf "certain(Q, D) by naive evaluation: %a@." Instance.pp naive;
  let reference =
    Semantics.certain_answers_by_enumeration (fun w -> Ucq.answers u w) d
  in
  Format.printf "certain(Q, D) by enumerating completions: %a@."
    Instance.pp reference;
  Format.printf "agreement (Imielinski-Lipski): %b@."
    (Instance.equal naive reference);

  section "Prop. 2: three views of Boolean certainty";
  (* Boolean query: is there a fact with first and last column equal? *)
  let qb =
    Cq.boolean [ ("D", [ Fo.Var "x"; Fo.Var "y"; Fo.Var "x" ]) ]
  in
  Format.printf "Q_b: %a@." Cq.pp qb;
  Format.printf "via tableau homomorphism (D_Q <= D): %b@."
    (Certain.certain_cq_via_hom qb d);
  Format.printf "via containment (Q_D <= Q): %b@."
    (Certain.certain_cq_via_containment qb d);
  Format.printf "via naive evaluation: %b@."
    (Certain.certain_cq_via_naive qb d);

  section "The information ordering and glbs (certain information)";
  let d1 = Instance.of_list [ ("D", [ [ c 1; c 2; n1 ]; [ n1; c 5; c 1 ] ]) ] in
  let d2 = Instance.of_list [ ("D", [ [ c 1; c 2; c 9 ]; [ c 9; c 5; c 1 ] ]) ] in
  Format.printf "D1 = %a@.D2 = %a@." Instance.pp d1 Instance.pp d2;
  Format.printf "D1 <= D2?  %b   (D2 <= D1?  %b)@."
    (Ordering.leq d1 d2) (Ordering.leq d2 d1);
  let g = Glb.certain_information [ d1; d2 ] in
  Format.printf "certain information in {D1, D2} (core of the glb): %a@."
    Instance.pp g;
  Format.printf "it is a lower bound: %b %b@."
    (Ordering.leq g d1) (Ordering.leq g d2)
