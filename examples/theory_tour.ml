(* A tour of the order-theoretic core (Section 3) on live database
   objects: preorders, glbs, max-descriptions and the Galois connection,
   the Dedekind–MacNeille completion, and the 1990s powerdomain lifts.

   Run with:  dune exec examples/theory_tour.exe *)

open Certdb_values
open Certdb_relational

let section title = Format.printf "@.== %s ==@." title
let c i = Value.int i

module Rel = struct
  type t = Instance.t

  let leq = Ordering.leq
end

module P = Certdb_order.Preorder.Make (Rel)
module G = Certdb_order.Galois.Make (Rel)

let () =
  section "A small pool of instances ordered by information";
  let x = Value.fresh_null () in
  let d_unknown = Instance.of_list [ ("R", [ [ x; x ] ]) ] in
  let d_half = Instance.of_list [ ("R", [ [ c 1; x ] ]) ] in
  let d_loop = Instance.of_list [ ("R", [ [ c 1; c 1 ] ]) ] in
  let d_edge = Instance.of_list [ ("R", [ [ c 1; c 2 ] ]) ] in
  let d_both = Instance.union d_loop d_edge in
  let pool = [ Instance.empty; d_unknown; d_half; d_loop; d_edge; d_both ] in
  List.iter (fun d -> Format.printf "  %a@." Instance.pp d) pool;

  section "Chains and antichains in the preorder";
  Format.printf "empty <= R(x,x) <= R(1,1): %b@."
    (P.is_chain [ Instance.empty; d_unknown; d_loop ]);
  Format.printf "R(1,1) and R(1,2) incomparable: %b@."
    (P.is_antichain [ d_loop; d_edge ]);
  Format.printf "R(x,x) below R(1,1) but not R(1,2): %b %b@."
    (Ordering.leq d_unknown d_loop)
    (Ordering.leq d_unknown d_edge);

  section "Glbs in the pool = certain information";
  (match P.glb_in_pool [ d_loop; d_edge ] ~pool with
  | Some g -> Format.printf "glb of R(1,1), R(1,2) in pool: %a@." Instance.pp g
  | None -> Format.printf "no glb inside the pool@.");
  let constructed = Glb.glb d_loop d_edge in
  Format.printf "constructed glb (Prop. 5): %a@." Instance.pp constructed;
  Format.printf "it is a glb relative to the pool: %b@."
    (P.is_glb constructed [ d_loop; d_edge ] ~pool:(constructed :: pool));

  section "Theorem 1 through the Galois connection";
  let pool' = constructed :: pool in
  Format.printf "Mod/Th laws hold on the pool: %b@." (G.laws_hold ~pool:pool');
  Format.printf "the glb is a max-description of {R(1,1), R(1,2)}: %b@."
    (G.is_max_description constructed [ d_loop; d_edge ] ~pool:pool');

  section "Dedekind-MacNeille completion of the pool";
  let arr = Array.of_list pool' in
  let completion =
    Certdb_order.Completion.make ~size:(Array.length arr) ~leq:(fun i j ->
        Ordering.leq arr.(i) arr.(j))
  in
  Format.printf "%d instances complete to a lattice of %d cuts (lattice: %b)@."
    (Array.length arr)
    (Certdb_order.Completion.cardinal completion)
    (Certdb_order.Completion.is_lattice completion);

  section "Powerdomain lifts on the tuple order";
  let module Tup = struct
    type t = Instance.fact

    let leq (f : Instance.fact) (g : Instance.fact) =
      String.equal f.rel g.rel && Ordering.tuple_leq f.args g.args
  end in
  let module PD = Certdb_order.Powerdomain.Make (Tup) in
  Format.printf "hoare lift of facts = the 1990s ordering: %b@."
    (PD.hoare (Instance.facts d_half) (Instance.facts d_edge)
    = Ordering.hoare_leq d_half d_edge);
  Format.printf
    "on this Codd-style pair it matches the semantic ordering too: %b@."
    (Ordering.hoare_leq d_half d_edge = Ordering.leq d_half d_edge);

  section "Where the lift breaks (Prop. 4) - repeated nulls";
  Format.printf "R(x,x) hoare-below R(1,2): %b, but hom-below: %b@."
    (Ordering.hoare_leq d_unknown d_edge)
    (Ordering.leq d_unknown d_edge)
