(* Open vs closed world: the orderings ⪯ (1990s powerdomain), ⊑ (OWA,
   homomorphisms) and ⊑cwa (onto homomorphisms) compared — Props. 4 and 8.

   Run with:  dune exec examples/cwa_vs_owa.exe *)

open Certdb_values
open Certdb_relational

let section title = Format.printf "@.== %s ==@." title
let c i = Value.int i

let () =
  let n1 = Value.fresh_null () in

  section "On Codd databases the 1990s ordering is the information ordering";
  let d = Instance.of_list [ ("R", [ [ n1; c 2 ] ]) ] in
  let d' = Instance.of_list [ ("R", [ [ c 1; c 2 ]; [ c 3; c 4 ] ]) ] in
  Format.printf "D = %a,  D' = %a@." Instance.pp d Instance.pp d';
  Format.printf "D is Codd: %b@." (Codd.is_codd d);
  Format.printf "hoare (⪯): %b   hom (⊑): %b   (Prop. 4: equal)@."
    (Ordering.hoare_leq d d') (Ordering.leq d d');

  section "On naive databases they differ";
  let shared = Value.fresh_null () in
  let dn = Instance.of_list [ ("R", [ [ shared; shared ] ]) ] in
  let dn' = Instance.of_list [ ("R", [ [ c 1; c 2 ] ]) ] in
  Format.printf "D = %a,  D' = %a@." Instance.pp dn Instance.pp dn';
  Format.printf "hoare (⪯): %b   but hom (⊑): %b@."
    (Ordering.hoare_leq dn dn') (Ordering.leq dn dn');
  Format.printf
    "(the repeated null promises equal columns; no homomorphism exists)@.";

  section "CWA: onto homomorphisms and Hall's condition (Prop. 8)";
  let d1 = Instance.of_list [ ("R", [ [ n1 ]; [ c 9 ] ]) ] in
  let d2 = Instance.of_list [ ("R", [ [ c 1 ]; [ c 9 ] ]) ] in
  let d3 = Instance.of_list [ ("R", [ [ c 1 ]; [ c 2 ]; [ c 9 ] ]) ] in
  Format.printf "D1 = %a@." Instance.pp d1;
  Format.printf "D2 = %a: OWA %b, CWA %b@." Instance.pp d2
    (Ordering.leq d1 d2) (Ordering.cwa_leq d1 d2);
  Format.printf "D3 = %a: OWA %b, CWA %b@." Instance.pp d3
    (Ordering.leq d1 d3) (Ordering.cwa_leq d1 d3);
  Format.printf
    "(closed world: D3 has a fact D1 cannot account for)@.";

  section "Hall's condition in action";
  (* two incomplete facts that can only be explained by one complete fact *)
  let need = Instance.of_list [ ("R", [ [ c 1; n1 ] ]) ] in
  let give =
    Instance.of_list [ ("R", [ [ c 1; c 5 ]; [ c 1; c 6 ] ]) ]
  in
  Format.printf "D = %a,  D' = %a@." Instance.pp need Instance.pp give;
  Format.printf "⪯: %b  Hall: %b  so ⊑cwa: %b (matches onto-search: %b)@."
    (Ordering.hoare_leq need give)
    (Ordering.hall_condition need give)
    (Ordering.cwa_leq_codd need give)
    (Ordering.cwa_leq need give);
  Format.printf
    "(one incomplete fact cannot cover two distinct complete facts)@.";

  section "Polynomial CWA check on random Codd data";
  let agree = ref 0 and total = ref 0 in
  for seed = 0 to 49 do
    let a =
      Codd.random ~seed ~schema:[ ("R", 2) ] ~facts:4 ~null_prob:0.4
        ~domain:3 ()
    in
    let b =
      Codd.random ~seed:(seed + 1000) ~schema:[ ("R", 2) ] ~facts:4
        ~null_prob:0.0 ~domain:3 ()
    in
    incr total;
    if Ordering.cwa_leq a b = Ordering.cwa_leq_codd a b then incr agree
  done;
  Format.printf "onto-hom search vs ⪯+Hopcroft-Karp: %d/%d agree@." !agree
    !total
