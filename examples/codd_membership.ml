(* Membership under the Codd interpretation (Section 6, Theorem 6):
   deciding D' ∈ [[D]] in polynomial time when nulls are not reused and the
   structural part has bounded treewidth — one algorithm covering both the
   relational case [3] and the XML case [7].

   Run with:  dune exec examples/codd_membership.exe *)

open Certdb_values
open Certdb_csp
open Certdb_gdm

let section title = Format.printf "@.== %s ==@." title
let c i = Value.int i

let () =
  section "An incomplete XML-shaped database (Codd nulls)";
  let n1 = Value.fresh_null () and n2 = Value.fresh_null () in
  (* r [ item(⊥1) [ price(10) ]; item(⊥2) ] *)
  let d =
    Gdb.make
      ~nodes:
        [ (0, "r", []); (1, "item", [ n1 ]); (2, "price", [ c 10 ]);
          (3, "item", [ n2 ]) ]
      ~tuples:[ ("child", [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 3 ] ]) ]
  in
  Format.printf "D = %a@." Gdb.pp d;
  Format.printf "Codd interpretation: %b@." (Gdb.codd d);

  section "A complete candidate document";
  let d' =
    Gdb.make
      ~nodes:
        [ (0, "r", []); (1, "item", [ c 7 ]); (2, "price", [ c 10 ]);
          (3, "item", [ c 8 ]); (4, "price", [ c 30 ]) ]
      ~tuples:[ ("child", [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 3 ]; [ 3; 4 ] ]) ]
  in
  Format.printf "D' = %a@." Gdb.pp d';

  section "Membership by the bounded-treewidth dynamic program";
  let decomposition = Treewidth.of_structure (Gdb.structure d) in
  Format.printf "treewidth of D's structure (tree): %d@."
    (Treewidth.width decomposition);
  Format.printf "D' in [[D]] (DP): %b@." (Membership.codd_leq d d');
  Format.printf "D' in [[D]] (generic NP solver): %b@."
    (Membership.generic_leq d d');
  (match Membership.codd_leq_witness d d' with
  | Some h ->
    Format.printf "witness: nodes %s, nulls %a@."
      (String.concat ", "
         (List.map
            (fun (v, w) -> Printf.sprintf "%d->%d" v w)
            (Structure.Int_map.bindings h.Ghom.node_map)))
      Valuation.pp h.Ghom.valuation
  | None -> assert false);

  section "A negative case";
  let bad =
    Gdb.make
      ~nodes:[ (0, "r", []); (1, "item", [ c 7 ]) ]
      ~tuples:[ ("child", [ [ 0; 1 ] ]) ]
  in
  (* D needs an item with a price child; bad has none *)
  Format.printf "smaller document in [[D]]: %b@." (Membership.codd_leq d bad);

  section "Why Codd matters";
  (* a reused null couples two differently-labeled nodes: membership then
     needs the generic (NP) solver, because no per-node candidate relation
     can express the coupling *)
  let shared = Value.fresh_null () in
  let naive =
    Gdb.make
      ~nodes:[ (0, "r", []); (1, "item", [ shared ]); (2, "receipt", [ shared ]) ]
      ~tuples:[ ("child", [ [ 0; 1 ]; [ 0; 2 ] ]) ]
  in
  Format.printf "a database reusing a null is not Codd: %b@."
    (Gdb.codd naive);
  let consistent_target =
    Gdb.make
      ~nodes:[ (0, "r", []); (1, "item", [ c 1 ]); (2, "receipt", [ c 1 ]) ]
      ~tuples:[ ("child", [ [ 0; 1 ]; [ 0; 2 ] ]) ]
  in
  let inconsistent_target =
    Gdb.make
      ~nodes:[ (0, "r", []); (1, "item", [ c 1 ]); (2, "receipt", [ c 2 ]) ]
      ~tuples:[ ("child", [ [ 0; 1 ]; [ 0; 2 ] ]) ]
  in
  Format.printf "into item(1)/receipt(1) (coupling satisfied): %b@."
    (Membership.generic_leq naive consistent_target);
  Format.printf "into item(1)/receipt(2) (coupling violated): %b@."
    (Membership.generic_leq naive inconsistent_target)
